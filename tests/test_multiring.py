"""Tests for the multi-ring escape extension (§VII fault tolerance)."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import Dragonfly, PortKind
from repro.topology.multiring import MultiRing, zigzag_paths


class TestZigzagPaths:
    @pytest.mark.parametrize("h", [1, 2, 3, 4, 6, 8])
    def test_paths_are_hamiltonian(self, h):
        for j, path in enumerate(zigzag_paths(h)):
            assert sorted(path) == list(range(2 * h))
            assert path[0] == 2 * h - 1 - j
            assert path[-1] == j

    @pytest.mark.parametrize("h", [2, 3, 4, 6, 8])
    def test_paths_edge_disjoint_and_complete(self, h):
        """The h paths partition the edges of K_{2h} exactly."""
        edges = set()
        for path in zigzag_paths(h):
            for a, b in zip(path, path[1:]):
                e = frozenset((a, b))
                assert e not in edges, f"edge {e} reused"
                edges.add(e)
        assert len(edges) == h * (2 * h - 1)  # all of K_{2h}

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            zigzag_paths(0)


class TestMultiRing:
    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    def test_max_rings_validate(self, h):
        mr = MultiRing(Dragonfly(h), h)
        mr.validate()
        assert len(mr) == h

    def test_offsets_distinct_and_coprime(self):
        from math import gcd

        topo = Dragonfly(3)
        mr = MultiRing(topo, 3)
        offsets = [spec.offset for spec in mr.rings]
        assert len(set(offsets)) == 3
        for d in offsets:
            assert gcd(d, topo.num_groups) == 1

    def test_too_many_rings_rejected(self):
        with pytest.raises(ValueError):
            MultiRing(Dragonfly(2), 3)
        with pytest.raises(ValueError):
            MultiRing(Dragonfly(2), 0)

    def test_each_ring_covers_all_routers(self):
        topo = Dragonfly(2)
        mr = MultiRing(topo, 2)
        for spec in mr.rings:
            assert sorted(spec.order) == list(topo.routers())


class TestNetworkIntegration:
    def make_sim(self, escape="embedded", rings=2, **overrides):
        cfg = SimulationConfig.small(
            h=2, routing="ofar", escape=escape, escape_rings=rings, **overrides
        )
        return Simulator(cfg)

    def test_config_validates_ring_count(self):
        with pytest.raises(ValueError, match="escape_rings"):
            SimulationConfig.small(h=2, routing="ofar", escape_rings=3)

    @pytest.mark.parametrize("escape", ["physical", "embedded"])
    def test_escape_hops_per_ring(self, escape):
        sim = self.make_sim(escape=escape)
        net = sim.network
        for rid in net.topo.routers():
            assert len(net.escape_hops[rid]) == 2
            ports = [p for p, _ in net.escape_hops[rid]]
            assert len(set(ports)) == 2  # edge-disjoint hops

    def test_physical_two_ring_ports(self):
        sim = self.make_sim(escape="physical")
        rt = sim.network.routers[0]
        base = sim.network.topo.ports_per_router
        assert rt.in_kind[base] is PortKind.RING
        assert rt.in_kind[base + 1] is PortKind.RING
        assert rt.out[base].kind is PortKind.RING
        assert rt.out[base + 1].kind is PortKind.RING

    def test_embedded_two_channels_flagged(self):
        sim = self.make_sim(escape="embedded")
        net = sim.network
        flagged = sum(
            1
            for rt in net.routers
            for ch in rt.out
            if ch is not None and ch.ring_vc >= 0 and ch.kind is not PortKind.RING
        )
        assert flagged == 2 * net.topo.num_routers

    @pytest.mark.parametrize("escape", ["physical", "embedded"])
    def test_delivery_with_two_rings(self, escape):
        sim = self.make_sim(escape=escape)
        rng = __import__("random").Random(6)
        n = sim.network.topo.num_nodes
        for _ in range(80):
            s, d = rng.randrange(n), rng.randrange(n)
            if s != d:
                sim.create_packet(s, d)
        sim.run_until_drained(400_000)
        assert sim.network.ejected_packets == sim.created_packets
        sim.network.check_conservation()

    def test_disable_ring_survives(self):
        """With one of two rings disabled, heavy adversarial traffic
        still drains — the §VII fault-tolerance claim."""
        sim = self.make_sim(escape="embedded", escape_patience=0)
        sim.network.disable_ring(0)
        topo = sim.network.topo
        rng = __import__("random").Random(2)
        npg = topo.p * topo.a
        for node in range(topo.num_nodes):
            g = node // npg
            for _ in range(4):
                dst = ((g + topo.h) % topo.num_groups) * npg + rng.randrange(npg)
                sim.create_packet(node, dst)
        sim.run_until_drained(1_000_000)
        assert sim.network.ejected_packets == sim.created_packets

    def test_disabled_ring_not_entered(self):
        sim = self.make_sim(escape="embedded", escape_patience=0)
        net = sim.network
        net.disable_ring(1)
        rt = net.routers[0]
        topo = net.topo
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.global_misrouted = True
        pkt.local_misroute_group = 0
        port = topo.local_port(0, 1)
        rt.in_bufs[port][0].push(pkt)
        up = rt.upstream[port]
        net.routers[up[0]].out[up[1]].credits[0] -= pkt.size
        net.injected_packets += 1
        for ch in rt.out:
            if ch is not None and ch.kind is not PortKind.RING:
                for vc in ch.data_vcs:
                    ch.credits[vc] = 0
        req = sim.routing.route(rt, port, 0, pkt, 100)
        if req is not None:
            out_port, _, kind = req
            # Must be ring 0's hop, never ring 1's.
            assert net.ring_of_channel.get((0, out_port)) == 0

    def test_disable_bad_ring_id(self):
        sim = self.make_sim()
        with pytest.raises(ValueError):
            sim.network.disable_ring(5)

    def test_enable_ring_roundtrip(self):
        sim = self.make_sim()
        sim.network.disable_ring(0)
        assert 0 in sim.network.disabled_rings
        sim.network.enable_ring(0)
        assert 0 not in sim.network.disabled_rings
