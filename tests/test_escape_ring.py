"""Tests for the escape subnetwork: bubble condition, exits, delivery."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.network.router import (
    KIND_RING_ENTER,
    KIND_RING_EXIT,
    KIND_RING_MOVE,
)
from repro.topology.dragonfly import PortKind


def make_sim(escape="physical", **overrides):
    # Zero escape patience: these tests poke the ring logic directly.
    overrides.setdefault("escape_patience", 0)
    cfg = SimulationConfig.small(h=2, routing="ofar", escape=escape, **overrides)
    return Simulator(cfg)


def starve_all_data(rt):
    """Exhaust data credits on every local/global output of a router."""
    for ch in rt.out:
        if ch is None or ch.kind is PortKind.NODE:
            continue
        for vc in ch.data_vcs:
            ch.credits[vc] = 0


def plant(sim, rt, pkt, port=None, vc=0):
    """Place a packet directly in an input buffer, debiting the upstream
    sender's credits so flow-control accounting stays coherent."""
    if port is None:
        port = sim.network.topo.local_port(rt.index, (rt.index + 1) % 2)
    rt.in_bufs[port][vc].push(pkt)
    rt.pending.add((port, vc))
    sim.network.wake_router(rt)  # manual plant bypasses try_inject
    up = rt.upstream[port]
    if up is not None:
        urid, uport = up
        sim.network.routers[urid].out[uport].credits[vc] -= pkt.size
    sim.network.injected_packets += 1
    return port


class TestRingEntry:
    @pytest.mark.parametrize("escape", ["physical", "embedded"])
    def test_enter_when_fully_blocked(self, escape):
        sim = make_sim(escape)
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.global_misrouted = True
        pkt.local_misroute_group = 0
        pkt.src_group = 0
        port = plant(sim, rt, pkt, port=topo.local_port(0, 1))
        starve_all_data(rt)
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None
        assert req[2] == KIND_RING_ENTER
        hop_port, hop_vc = sim.network.escape_hop[0]
        assert req[0] == hop_port

    def test_enter_requires_bubble(self):
        """Entering needs space for TWO packets in the ring VC."""
        sim = make_sim("physical")
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.global_misrouted = True
        pkt.local_misroute_group = 0
        port = plant(sim, rt, pkt, port=topo.local_port(0, 1))
        starve_all_data(rt)
        ring_ch = rt.out[topo.ring_port]
        for vc in range(ring_ch.num_vcs):
            ring_ch.credits[vc] = 2 * 8 - 1  # one packet + 7 phits: no bubble
        assert sim.routing.route(rt, port, 0, pkt, 0) is None
        ring_ch.credits[0] = 16  # exactly two packets
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None and req[2] == KIND_RING_ENTER

    def test_transit_needs_only_one_packet_space(self):
        sim = make_sim("physical")
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.on_ring = True
        port = plant(sim, rt, pkt, port=topo.ring_port)
        starve_all_data(rt)  # min exit impossible
        ring_ch = rt.out[topo.ring_port]
        for vc in range(ring_ch.num_vcs):
            ring_ch.credits[vc] = 8  # one packet: enough to move, not enter
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None and req[2] == KIND_RING_MOVE


class TestRingExit:
    def test_exit_to_min_when_available(self):
        sim = make_sim("physical")
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.on_ring = True
        port = plant(sim, rt, pkt, port=topo.ring_port)
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None
        assert req[2] == KIND_RING_EXIT
        assert req[0] == topo.min_output_port(0, pkt.dst)

    def test_no_exit_after_limit(self):
        sim = make_sim("physical", max_ring_exits=2)
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
        pkt.on_ring = True
        pkt.ring_exits = 2
        port = plant(sim, rt, pkt, port=topo.ring_port)
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None and req[2] == KIND_RING_MOVE

    def test_ejection_exit_always_allowed(self):
        """At the destination router the packet leaves the ring even
        with the exit budget spent."""
        sim = make_sim("physical", max_ring_exits=0)
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, 1)  # dst node 1 on router 0
        pkt.on_ring = True
        pkt.ring_exits = 5
        port = plant(sim, rt, pkt, port=topo.ring_port)
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None
        assert req[2] == KIND_RING_EXIT
        assert topo.port_kind(req[0]) is PortKind.NODE


class TestRingDelivery:
    @pytest.mark.parametrize("escape", ["physical", "embedded"])
    def test_ring_only_delivery(self, escape):
        """A packet stuck on the ring still reaches any destination:
        the ring passes every router."""
        sim = make_sim(escape, max_ring_exits=0)
        topo = sim.network.topo
        # Force a packet onto the ring at router 0 and let the simulator
        # carry it; with 0 exits it must ride until the destination.
        dst = topo.num_nodes - 1
        pkt = sim.create_packet(topo.p * 1, dst)
        pkt.on_ring = True
        rt = sim.network.routers[0]
        if escape == "physical":
            port = topo.ring_port
        else:
            # The embedded ring arrives via the predecessor's hop port.
            ring = sim.network.ring
            pred = ring.order[(ring.position(0) - 1) % len(ring)]
            pred_port = ring.successor_port(pred)
            port = sim.network.routers[pred].out[pred_port].dest_port
            vc_idx = sim.network.routers[pred].out[pred_port].ring_vc
        if escape == "physical":
            plant(sim, rt, pkt, port=port, vc=0)
        else:
            plant(sim, rt, pkt, port=port, vc=vc_idx)
        sim.run_until_drained(500_000)
        assert pkt.ejected_cycle > 0
        assert pkt.ring_hops > 0

    def test_heavy_congestion_all_delivered(self):
        """Tiny buffers + reduced VCs + adversarial burst: everything
        still drains (the ring breaks all deadlocks)."""
        cfg = SimulationConfig.small(
            h=2, routing="ofar", escape="embedded",
            local_vcs=1, global_vcs=1, injection_vcs=1,
            local_buffer=16, global_buffer=16, injection_buffer=8,
        )
        sim = Simulator(cfg)
        topo = sim.network.topo
        rng = __import__("random").Random(0)
        npg = topo.p * topo.a
        for node in range(topo.num_nodes):
            g = node // npg
            for _ in range(3):
                dst = ((g + 2) % topo.num_groups) * npg + rng.randrange(npg)
                sim.create_packet(node, dst)
        sim.run_until_drained(1_000_000)
        sim.network.check_conservation()
        assert sim.network.ejected_packets == sim.created_packets
