"""Tests for the static ADV+N local-link concentration analysis."""

import pytest

from repro.analysis.offsets import (
    l2_link_concentration,
    max_l2_concentration,
    offset_bound_table,
    valiant_offset_bound,
)
from repro.topology.dragonfly import Dragonfly


class TestConcentration:
    def test_advh_concentrates_h_flows(self):
        """Fig. 2a: at offset h all h arriving links funnel to one local
        link, for any h."""
        for h in (2, 3, 4, 6):
            topo = Dragonfly(h)
            assert max_l2_concentration(topo, h) == h

    def test_multiples_of_h_also_worst(self):
        topo = Dragonfly(3)
        for n in (3, 6, 9, 12):
            assert max_l2_concentration(topo, n) == 3

    def test_last_offset_is_benign_exception(self):
        """Offset 2h^2 == -1 (mod G) wraps around and concentrates
        nothing, unlike the other multiples of h."""
        for h in (2, 3, 4):
            topo = Dragonfly(h)
            assert max_l2_concentration(topo, 2 * h * h) == 1

    def test_offset_one_is_benign(self):
        """ADV+1 'causes the lower congestion on local links' (§V)."""
        for h in (2, 3, 6):
            topo = Dragonfly(h)
            assert max_l2_concentration(topo, 1) == 1

    def test_counts_are_per_link(self):
        topo = Dragonfly(3)
        counts = l2_link_concentration(topo, 3)
        assert all(r_in != r_out for r_in, r_out in counts)
        assert all(v >= 1 for v in counts.values())
        # Total flows = wired offsets minus degenerate/self-transit ones.
        assert sum(counts.values()) <= 2 * topo.h * topo.h

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            l2_link_concentration(Dragonfly(2), 0)


class TestBound:
    def test_worst_case_bound_near_one_over_h(self):
        """(G-2)/(2h^2*h) -> 1/h for large networks."""
        for h in (3, 6, 16):
            topo = Dragonfly(h)
            bound = valiant_offset_bound(topo, h)
            assert bound == pytest.approx(1 / h, rel=0.1)
            assert bound <= 1 / h  # the exact form is slightly tighter

    def test_benign_offset_hits_global_limit(self):
        topo = Dragonfly(6)
        assert valiant_offset_bound(topo, 1) == 0.5

    def test_bound_never_exceeds_half(self):
        topo = Dragonfly(3)
        for n in range(1, topo.num_groups):
            assert valiant_offset_bound(topo, n) <= 0.5


class TestTable:
    def test_full_table(self):
        topo = Dragonfly(2)
        rows = offset_bound_table(topo)
        assert len(rows) == topo.num_groups - 1
        assert all(r.is_worst_case == (r.offset % 2 == 0) for r in rows)

    def test_subset(self):
        topo = Dragonfly(3)
        rows = offset_bound_table(topo, [1, 3])
        assert [r.offset for r in rows] == [1, 3]
        assert rows[1].concentration == 3
