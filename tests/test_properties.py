"""Property-based tests (hypothesis) on core structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.offsets import max_l2_concentration, valiant_offset_bound
from repro.engine.config import SimulationConfig
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.network.arbiter import LRSArbiter
from repro.network.buffers import Buffer
from repro.network.packet import Packet
from repro.topology.dragonfly import Dragonfly, PortKind
from repro.topology.hamiltonian import HamiltonianRing
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern

hs = st.integers(min_value=1, max_value=5)


class TestTopologyProperties:
    @given(h=hs, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_min_route_valid_and_short(self, h, seed):
        topo = Dragonfly(h)
        rng = random.Random(seed)
        src = rng.randrange(topo.num_nodes)
        dst = rng.randrange(topo.num_nodes)
        if src == dst:
            return
        route = topo.min_route(src, dst)
        assert 1 <= len(route) <= 4  # <= 3 hops + ejection
        # Walk the route and confirm connectivity.
        router = topo.node_router(src)
        for hop_router, port in route:
            assert hop_router == router
            if topo.port_kind(port) is PortKind.NODE:
                assert router == topo.node_router(dst)
                assert port == topo.node_port(dst)
            else:
                router, _ = topo.neighbor(router, port)
        # At most one global hop on a minimal path.
        kinds = [topo.port_kind(p) for _, p in route]
        assert kinds.count(PortKind.GLOBAL) <= 1

    @given(h=hs, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_palmtree_involution(self, h, seed):
        topo = Dragonfly(h)
        rng = random.Random(seed)
        g = rng.randrange(topo.num_groups)
        r = rng.randrange(topo.a)
        k = rng.randrange(topo.h)
        ep = topo.global_link_endpoint(g, r, k)
        back = topo.global_link_endpoint(ep.group, ep.router, ep.port)
        assert (back.group, back.router, back.port) == (g, r, k)

    @given(h=hs)
    @settings(max_examples=10, deadline=None)
    def test_hamiltonian_ring_valid(self, h):
        topo = Dragonfly(h)
        ring = HamiltonianRing(topo)
        ring.validate()

    @given(h=st.integers(2, 4), offset=st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_offset_bounds_sane(self, h, offset):
        topo = Dragonfly(h)
        offset = 1 + (offset % (topo.num_groups - 1))
        k = max_l2_concentration(topo, offset)
        assert 0 <= k <= topo.h
        bound = valiant_offset_bound(topo, offset)
        assert 0 < bound <= 0.5
        # Multiples of h are the worst case — except 2h^2 (== -1 mod G),
        # which wraps around and is benign like ADV+1.
        if offset % h == 0 and offset != topo.num_groups - 1:
            assert k == h


class TestBufferProperties:
    @given(sizes=st.lists(st.integers(1, 8), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_occupancy_always_consistent(self, sizes):
        cap = sum(sizes)
        buf = Buffer(cap)
        for i, s in enumerate(sizes):
            buf.push(Packet(pid=i, src=0, dst=1, size=s, created_cycle=0,
                            dst_router=0, dst_group=0, src_group=0))
        assert buf.occupancy == cap
        total = 0
        while buf:
            total += buf.pop().size
            assert buf.occupancy == cap - total
        assert total == cap


class TestArbiterProperties:
    @given(
        reqs=st.lists(
            st.lists(st.integers(0, 5), min_size=1, max_size=6),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_grant_always_member(self, reqs):
        arb = LRSArbiter()
        for batch in reqs:
            out = arb.grant(batch)
            assert out in batch

    @given(n=st.integers(2, 6), rounds=st.integers(2, 10))
    @settings(max_examples=30)
    def test_starvation_freedom(self, n, rounds):
        """Under constant contention, everyone is served once per n."""
        arb = LRSArbiter()
        grants = [arb.grant(list(range(n))) for _ in range(n * rounds)]
        for k in range(n):
            assert grants.count(k) == rounds


class TestSimulationProperties:
    @given(
        seed=st.integers(0, 1000),
        routing=st.sampled_from(["min", "val", "pb", "ofar"]),
        load=st.floats(0.05, 0.5),
        pattern=st.sampled_from(["UN", "ADV+1", "ADV+2"]),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_sanity(self, seed, routing, load, pattern):
        cfg = SimulationConfig.small(h=2, routing=routing, seed=seed)
        sim = Simulator(cfg)
        topo = sim.network.topo
        p = make_pattern(topo, _pattern_rng(cfg, seed), pattern)
        sim.generator = BernoulliTraffic(p, load, 8, topo.num_nodes, seed)
        sim.run(250)
        net = sim.network
        net.check_conservation()
        # Credits never negative or above capacity.
        for rt in net.routers:
            for ch in rt.out:
                if ch is None:
                    continue
                for vc in range(ch.num_vcs):
                    assert 0 <= ch.credits[vc] <= ch.capacity
        # Buffers never overfull.
        for rt in net.routers:
            for bufs in rt.in_bufs:
                for buf in bufs:
                    assert 0 <= buf.occupancy <= buf.capacity
        # Latencies are causal.
        assert net.ejected_packets <= net.injected_packets

    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_pairs_always_delivered_ofar(self, seed):
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=seed)
        sim = Simulator(cfg)
        rng = random.Random(seed)
        n = sim.network.topo.num_nodes
        for _ in range(30):
            src, dst = rng.randrange(n), rng.randrange(n)
            if src != dst:
                sim.create_packet(src, dst)
        sim.run_until_drained(300_000)
        assert sim.network.ejected_packets == sim.created_packets
