"""Edge-case tests for the network's event wheel and accounting."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.network.network import _EV_ARRIVAL, _EV_CREDIT, Network
from repro.topology.dragonfly import PortKind


def make_net(**overrides):
    return Network(SimulationConfig.small(h=2, routing="min", **overrides))


class TestEventWheel:
    def test_no_events_noop(self):
        net = make_net()
        net.process_events(5)  # must not raise
        assert not net.has_pending_events()

    def test_events_processed_once(self):
        net = make_net()
        net.schedule(3, (_EV_CREDIT, 0, 2, 0, 0))
        assert net.has_pending_events()
        net.process_events(3)
        assert not net.has_pending_events()
        net.process_events(3)  # second call: nothing left

    def test_multiple_events_same_cycle_in_order(self):
        """Arrivals scheduled for one cycle deliver in schedule order
        (FIFO within the cycle), keeping runs deterministic."""
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        net = sim.network
        p1 = sim.create_packet(4, 50)
        p2 = sim.create_packet(6, 51)
        port = net.topo.local_port(0, 1)
        # Reserve space like a real sender would.
        up = net.routers[0].upstream[port]
        net.routers[up[0]].out[up[1]].credits[0] -= 16
        net.in_flight_packets += 2
        net.schedule(9, (_EV_ARRIVAL, 0, port, 0, p1))
        net.schedule(9, (_EV_ARRIVAL, 0, port, 0, p2))
        net.injected_packets += 2
        net.process_events(9)
        buf = net.routers[0].in_bufs[port][0]
        assert [p.pid for p in buf] == [p1.pid, p2.pid]

    def test_pending_event_cycles_sorted(self):
        net = make_net()
        net.schedule(9, (_EV_CREDIT, 0, 2, 0, 0))
        net.schedule(3, (_EV_CREDIT, 0, 2, 0, 0))
        assert net.pending_event_cycles() == [3, 9]


class TestAccounting:
    def test_sent_phits_counter(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        pkt = sim.create_packet(0, sim.network.topo.p * 1)
        sim.run_until_drained(50_000)
        rt0 = sim.network.routers[0]
        port = pkt.cache_port if pkt.cache_port >= 0 else None
        total_sent = sum(
            ch.sent_phits
            for rt in sim.network.routers
            for ch in rt.out
            if ch is not None
        )
        # 1 local hop + 1 ejection = 16 phits through crossbars.
        assert total_sent == 16

    def test_movements_counter(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        sim.create_packet(0, 71)  # l-g-l + eject = 4 grants
        sim.run_until_drained(50_000)
        assert sim.network.movements == 4

    def test_ejection_never_counts_as_hop(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        pkt = sim.create_packet(0, 1)
        sim.run_until_drained(10_000)
        assert pkt.hops == 0
        assert pkt.local_hops == pkt.global_hops == pkt.ring_hops == 0

    def test_hop_sums_consistent(self):
        """hops == local + global + ring for every delivered packet."""
        from repro.engine.runner import _pattern_rng
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing="ofar")
        sim = Simulator(cfg)
        seen = []
        orig = sim.metrics.on_eject

        def spy(pkt, cycle):
            seen.append(pkt)
            orig(pkt, cycle)

        sim.network.on_eject = spy
        pattern = make_pattern(sim.network.topo, _pattern_rng(cfg, 5), "ADV+2")
        sim.generator = BernoulliTraffic(pattern, 0.4, 8, 72, 3)
        sim.run(500)
        assert seen
        for pkt in seen:
            assert pkt.hops == pkt.local_hops + pkt.global_hops + pkt.ring_hops

    def test_in_flight_tracking(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        sim.create_packet(0, 71)
        sim.run(3)  # first hop granted, packet flying
        assert sim.network.in_flight_packets >= 0
        sim.run_until_drained(50_000)
        assert sim.network.in_flight_packets == 0


class TestOccupancyMemo:
    def test_router_occupancy_range(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        net = sim.network
        for rt in net.routers[:4]:
            occ = net.router_occupancy(rt, 0)
            assert 0.0 <= occ <= 1.0

    def test_ejection_channels_excluded(self):
        """NODE channels (quasi-infinite) must not dilute the signal."""
        net = make_net()
        rt = net.routers[0]
        for ch in rt.out:
            if ch.kind in (PortKind.LOCAL, PortKind.GLOBAL):
                for vc in range(ch.num_vcs):
                    ch.credits[vc] = 0
        assert net.router_occupancy(rt, 1) == pytest.approx(1.0)
