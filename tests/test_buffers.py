"""Unit tests for input FIFO buffers."""

import pytest

from repro.network.buffers import Buffer
from repro.network.packet import Packet


def mk_packet(pid=0, size=8):
    return Packet(
        pid=pid, src=0, dst=9, size=size, created_cycle=0,
        dst_router=1, dst_group=0, src_group=0,
    )


class TestBuffer:
    def test_initially_empty(self):
        buf = Buffer(32)
        assert len(buf) == 0
        assert not buf
        assert buf.head() is None
        assert buf.occupancy == 0
        assert buf.free_phits() == 32
        assert buf.fill_fraction() == 0.0

    def test_push_pop_fifo_order(self):
        buf = Buffer(32)
        pkts = [mk_packet(i) for i in range(4)]
        for p in pkts:
            buf.push(p)
        assert [buf.pop().pid for _ in range(4)] == [0, 1, 2, 3]

    def test_occupancy_tracking(self):
        buf = Buffer(32)
        buf.push(mk_packet(0))
        assert buf.occupancy == 8
        assert buf.free_phits() == 24
        assert buf.fill_fraction() == 0.25
        buf.push(mk_packet(1))
        assert buf.occupancy == 16
        buf.pop()
        assert buf.occupancy == 8

    def test_overflow_is_assertion(self):
        buf = Buffer(16)
        buf.push(mk_packet(0))
        buf.push(mk_packet(1))
        with pytest.raises(AssertionError):
            buf.push(mk_packet(2))

    def test_exact_fill(self):
        buf = Buffer(16)
        buf.push(mk_packet(0))
        buf.push(mk_packet(1))
        assert buf.free_phits() == 0
        assert buf.fill_fraction() == 1.0

    def test_head_peeks_without_removing(self):
        buf = Buffer(32)
        buf.push(mk_packet(7))
        assert buf.head().pid == 7
        assert len(buf) == 1

    def test_iter(self):
        buf = Buffer(32)
        for i in range(3):
            buf.push(mk_packet(i))
        assert [p.pid for p in buf] == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Buffer(0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Buffer(8).pop()

    def test_variable_sizes(self):
        buf = Buffer(10)
        buf.push(mk_packet(0, size=4))
        buf.push(mk_packet(1, size=6))
        assert buf.occupancy == 10
        assert buf.pop().size == 4
        assert buf.occupancy == 6
