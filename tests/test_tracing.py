"""Tests for the packet tracer."""

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.engine.tracing import PacketTrace, Tracer, describe_route


def make_sim(routing="min", **overrides):
    return Simulator(SimulationConfig.small(h=2, routing=routing, **overrides))


class TestTracer:
    def test_traces_selected_packet(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        other = sim.create_packet(2, 50)
        with Tracer(sim.network, pids={pkt.pid}) as tracer:
            sim.run_until_drained(100_000)
        trace = tracer.trace(pkt.pid)
        assert trace.hops
        assert tracer.trace(other.pid).hops == []  # not selected

    def test_trace_matches_min_route(self):
        sim = make_sim("min")
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        with Tracer(sim.network) as tracer:
            sim.run_until_drained(100_000)
        trace = tracer.trace(pkt.pid)
        # Routers visited = routers of the static minimal route.
        expected = [r for r, _ in topo.min_route(0, 71)]
        assert trace.path() == expected
        assert trace.kinds() == ["min"] * len(expected)
        assert trace.misroutes() == 0
        assert not trace.used_ring()

    def test_trace_records_misroutes(self):
        sim = make_sim("ofar")
        net = sim.network
        topo = net.topo
        port = topo.local_port(0, 1)
        net.fail_link(0, port)  # force a detour
        pkt = sim.create_packet(0, topo.p * 1)
        with Tracer(net, pids={pkt.pid}) as tracer:
            sim.run_until_drained(100_000)
        trace = tracer.trace(pkt.pid)
        assert trace.misroutes() >= 1
        assert "misroute" in " ".join(trace.kinds())

    def test_describe_route(self):
        sim = make_sim("min")
        pkt = sim.create_packet(0, 71)
        with Tracer(sim.network, pids={pkt.pid}) as tracer:
            sim.run_until_drained(100_000)
        text = describe_route(sim.network, tracer.trace(pkt.pid))
        assert text.startswith("g0:")
        assert "eject" in text

    def test_detach_restores_executor(self):
        from repro.network.network import Network

        sim = make_sim()
        tracer = Tracer(sim.network)
        tracer.attach()
        assert "execute_grant" in sim.network.__dict__  # instance override
        tracer.detach()
        assert "execute_grant" not in sim.network.__dict__
        assert sim.network.execute_grant.__func__ is Network.execute_grant

    def test_double_attach_rejected(self):
        import pytest

        sim = make_sim()
        tracer = Tracer(sim.network)
        tracer.attach()
        with pytest.raises(RuntimeError):
            tracer.attach()
        tracer.detach()

    def test_unknown_pid_empty_trace(self):
        sim = make_sim()
        tracer = Tracer(sim.network)
        assert tracer.trace(999) == PacketTrace(999)

    def test_simulation_unperturbed_by_tracing(self):
        """Tracing must not change results (pure observation)."""
        def run(trace: bool):
            sim = make_sim("ofar", seed=5)
            pkts = [sim.create_packet(i, 71 - i) for i in range(6)]
            if trace:
                with Tracer(sim.network):
                    sim.run_until_drained(100_000)
            else:
                sim.run_until_drained(100_000)
            return [p.ejected_cycle for p in pkts]

        assert run(True) == run(False)
