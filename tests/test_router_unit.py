"""Unit tests for OutputChannel and the router's separable allocator."""

import pytest

from repro.network.buffers import Buffer
from repro.network.packet import Packet
from repro.network.router import (
    KIND_MIN,
    OutputChannel,
    Router,
)
from repro.topology.dragonfly import PortKind


def mk_packet(pid=0, size=8, dst=99):
    return Packet(
        pid=pid, src=0, dst=dst, size=size, created_cycle=0,
        dst_router=dst // 2, dst_group=0, src_group=0,
    )


class TestOutputChannel:
    def mk(self, num_vcs=3, capacity=32, ring_vc=-1, kind=PortKind.LOCAL):
        return OutputChannel(
            port=2, kind=kind, latency=10, num_vcs=num_vcs, capacity=capacity,
            dest_router=1, dest_port=3, ring_vc=ring_vc,
        )

    def test_initial_credits_full(self):
        ch = self.mk()
        assert ch.credits == [32, 32, 32]
        assert ch.occupancy_fraction() == 0.0

    def test_occupancy_fraction(self):
        ch = self.mk()
        ch.credits = [32, 16, 0]
        assert ch.occupancy_fraction() == pytest.approx(0.5)

    def test_ring_vc_excluded_from_data(self):
        ch = self.mk(num_vcs=4, ring_vc=3)
        assert ch.data_vcs == [0, 1, 2]
        assert ch.data_capacity == 96
        ch.credits = [0, 0, 0, 32]  # only the ring VC has room
        assert ch.occupancy_fraction() == 1.0
        assert ch.best_data_vc(8) == -1

    def test_best_data_vc_max_credits(self):
        ch = self.mk()
        ch.credits = [10, 24, 24]
        assert ch.best_data_vc(8) == 1  # tie toward lowest index

    def test_best_data_vc_requires_whole_packet(self):
        ch = self.mk()
        ch.credits = [7, 6, 5]
        assert ch.best_data_vc(8) == -1
        assert ch.best_data_vc(5) == 0


class StubRouting:
    """Routes every head packet to a fixed output (port, vc)."""

    def __init__(self, out_port, out_vc=0):
        self.out_port = out_port
        self.out_vc = out_vc

    def route(self, rt, in_port, in_vc, pkt, cycle):
        if not rt.min_available(self.out_port, cycle, self.out_vc, pkt.size):
            return None
        return (self.out_port, self.out_vc, KIND_MIN)


class RecordingNetwork:
    """Captures grants and mimics the credit/busy side effects."""

    def __init__(self):
        self.grants = []

    def execute_grant(self, rt, in_port, in_vc, out_port, out_vc, kind, cycle):
        pkt = rt.in_bufs[in_port][in_vc].pop()
        if not rt.in_bufs[in_port][in_vc]:
            rt.pending.discard((in_port, in_vc))
        ch = rt.out[out_port]
        ch.busy_until = cycle + pkt.size
        rt.occupy_read_slot(in_port, cycle)
        ch.credits[out_vc] -= pkt.size
        self.grants.append((in_port, in_vc, out_port, out_vc, kind, pkt.pid))


def mk_router(num_inputs=3, num_vcs=2, capacity=32):
    rt = Router(rid=0, group=0, index=0, packet_size=8, iterations=3)
    for _ in range(num_inputs):
        rt.add_input_port(PortKind.LOCAL, num_vcs, capacity, upstream=None)
    for port in range(num_inputs):
        rt.add_output_channel(
            OutputChannel(
                port=port, kind=PortKind.LOCAL, latency=10,
                num_vcs=num_vcs, capacity=capacity, dest_router=9, dest_port=0,
            )
        )
    return rt


class TestAllocator:
    def test_idle_router_no_grants(self):
        rt = mk_router()
        net = RecordingNetwork()
        assert rt.allocate(0, StubRouting(0), net) == 0

    def test_single_packet_granted(self):
        rt = mk_router()
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.pending.add((0, 0))
        assert rt.allocate(0, StubRouting(2), net) == 1
        assert net.grants == [(0, 0, 2, 0, KIND_MIN, 1)]
        assert not rt.pending

    def test_output_conflict_one_winner(self):
        rt = mk_router()
        net = RecordingNetwork()
        for in_port in (0, 1):
            rt.in_bufs[in_port][0].push(mk_packet(in_port))
            rt.pending.add((in_port, 0))
        grants = rt.allocate(0, StubRouting(2), net)
        # Only one packet can win output 2 this cycle.
        assert grants == 1
        assert len(rt.pending) == 1

    def test_distinct_outputs_parallel_grants(self):
        rt = mk_router()
        net = RecordingNetwork()

        class PerInputRouting:
            def route(self, rt, in_port, in_vc, pkt, cycle):
                return (in_port, 0, KIND_MIN)  # input i -> output i

        for in_port in range(3):
            rt.in_bufs[in_port][0].push(mk_packet(in_port))
            rt.pending.add((in_port, 0))
        assert rt.allocate(0, PerInputRouting(), net) == 3

    def test_input_port_serialization(self):
        """Two VCs of one input port: only one grant per cycle."""
        rt = mk_router()
        net = RecordingNetwork()

        class PerVcRouting:
            def route(self, rt, in_port, in_vc, pkt, cycle):
                return (in_vc, 0, KIND_MIN)  # vc0 -> out0, vc1 -> out1

        rt.in_bufs[0][0].push(mk_packet(10))
        rt.in_bufs[0][1].push(mk_packet(11))
        rt.pending.update({(0, 0), (0, 1)})
        assert rt.allocate(0, PerVcRouting(), net) == 1

    def test_busy_input_port_skipped(self):
        rt = mk_router()
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.pending.add((0, 0))
        rt.in_busy[0][0] = 5
        assert rt.allocate(0, StubRouting(1), net) == 0
        assert rt.allocate(5, StubRouting(1), net) == 1

    def test_busy_output_port_skipped(self):
        rt = mk_router()
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.pending.add((0, 0))
        rt.out[1].busy_until = 4
        assert rt.allocate(0, StubRouting(1), net) == 0
        assert rt.allocate(4, StubRouting(1), net) == 1

    def test_no_credits_no_grant(self):
        rt = mk_router()
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.pending.add((0, 0))
        rt.out[1].credits[0] = 7  # less than a packet
        assert rt.allocate(0, StubRouting(1), net) == 0

    def test_iterations_fill_freed_inputs(self):
        """A loser of iteration 1 can win a different output later only
        if its routing proposes one — with a fixed route it stays put."""
        rt = mk_router()
        net = RecordingNetwork()
        for in_port in (0, 1):
            rt.in_bufs[in_port][0].push(mk_packet(in_port))
            rt.pending.add((in_port, 0))

        class AdaptiveRouting:
            def route(self, rt, in_port, in_vc, pkt, cycle):
                # Prefer output 2; fall back to output 0 if claimed.
                if rt.out_port_free(2, cycle):
                    return (2, 0, KIND_MIN)
                if rt.out_port_free(0, cycle):
                    return (0, 0, KIND_MIN)
                return None

        grants = rt.allocate(0, AdaptiveRouting(), net)
        assert grants == 2
        out_ports = sorted(g[2] for g in net.grants)
        assert out_ports == [0, 2]

    def test_fifo_order_within_vc(self):
        rt = mk_router()
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.in_bufs[0][0].push(mk_packet(2))
        rt.pending.add((0, 0))
        rt.allocate(0, StubRouting(1), net)
        assert (0, 0) in rt.pending  # second packet still queued
        rt.allocate(8, StubRouting(1), net)
        assert [g[5] for g in net.grants] == [1, 2]

    def test_lrs_fairness_across_inputs(self):
        """Over many cycles, contending inputs share one output fairly."""
        rt = mk_router(num_inputs=2, capacity=1024)
        net = RecordingNetwork()
        for _ in range(20):
            rt.in_bufs[0][0].push(mk_packet(0))
            rt.in_bufs[1][0].push(mk_packet(1))
        rt.pending.update({(0, 0), (1, 0)})
        cycle = 0
        while rt.pending and cycle < 1000:
            rt.out[0].credits[0] = 1024  # endless credits
            rt.allocate(cycle, StubRouting(0), net)
            cycle += 8
        winners = [g[0] for g in net.grants]
        assert winners.count(0) == winners.count(1) == 20
