"""Tests pinning the zero-load latency model against the simulator."""

import random

import pytest

from repro.analysis.latency_model import LatencyModel
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator


@pytest.fixture
def cfg():
    return SimulationConfig.small(h=2, routing="min")


class TestExactAgreement:
    def test_single_packets_match_exactly(self, cfg):
        """For 25 random pairs, model == simulator to the cycle."""
        model = LatencyModel(cfg)
        rng = random.Random(4)
        for _ in range(25):
            src = rng.randrange(72)
            dst = rng.randrange(72)
            if src == dst:
                continue
            sim = Simulator(cfg)
            pkt = sim.create_packet(src, dst)
            sim.run_until_drained(100_000)
            assert pkt.latency == model.minimal(src, dst), (src, dst)

    def test_paper_config_single_packet(self):
        """Same exactness under the paper's h=6 latencies (one packet:
        cheap even at full scale)."""
        cfg = SimulationConfig.paper(routing="min")
        model = LatencyModel(cfg)
        sim = Simulator(cfg)
        src, dst = 0, cfg.h * 100 + 3
        pkt = sim.create_packet(src, dst)
        sim.run_until_drained(100_000)
        assert pkt.latency == model.minimal(src, dst)

    def test_intra_router_cost(self, cfg):
        """Same-router delivery: ejection hop only."""
        model = LatencyModel(cfg)
        assert model.minimal(0, 1) == cfg.ejection_latency + cfg.packet_size


class TestValiantExpectation:
    def test_valiant_mean_over_many_packets(self, cfg):
        """One VAL packet at a time, many intermediate draws: the mean
        approaches the model's expectation."""
        val_cfg = cfg.with_routing("val")
        model = LatencyModel(val_cfg)
        src, dst = 0, 71
        expected = model.valiant(src, dst)
        latencies = []
        for seed in range(40):
            sim = Simulator(val_cfg.replace(seed=seed))
            pkt = sim.create_packet(src, dst)
            sim.run_until_drained(100_000)
            latencies.append(pkt.latency)
        mean = sum(latencies) / len(latencies)
        assert mean == pytest.approx(expected, rel=0.08)

    def test_intragroup_valiant_is_minimal(self, cfg):
        model = LatencyModel(cfg)
        assert model.valiant(0, 5) == model.minimal(0, 5)


class TestLowLoadPlateau:
    def test_uniform_low_load_near_model(self, cfg):
        """Measured latency at 5% load sits within ~20% of zero-load."""
        model = LatencyModel(cfg)
        expected = model.expected_uniform("min", samples=4_000)
        pt = run_spec(RunSpec(cfg, "UN", 0.05, warmup=500, measure=800))
        assert pt.avg_latency == pytest.approx(expected, rel=0.2)
        assert pt.avg_latency >= expected * 0.98  # queueing only adds

    def test_val_costs_more_than_min(self, cfg):
        model = LatencyModel(cfg)
        assert (
            model.expected_uniform("val", samples=1_000)
            > model.expected_uniform("min", samples=1_000)
        )
