"""Unit tests for SimulationConfig and ThresholdConfig."""

import pytest

from repro.engine.config import SimulationConfig, ThresholdConfig


class TestThresholds:
    def test_variable_policy_strict(self):
        th = ThresholdConfig.variable(0.9)
        # Strict comparison: an idle minimal queue admits nothing.
        assert not th.eligible(0.0, q_min=0.0)
        assert th.eligible(0.1, q_min=0.5)
        assert not th.eligible(0.45, q_min=0.5)  # 0.45 == 0.9*0.5, strict
        assert not th.eligible(0.6, q_min=0.5)

    def test_variable_nonmin_threshold(self):
        th = ThresholdConfig.variable(0.75)
        assert th.nonmin_threshold(0.4) == pytest.approx(0.3)

    def test_static_policy_inclusive(self):
        th = ThresholdConfig.static(th_min=1.0, th_nonmin=0.4)
        assert th.eligible(0.4, q_min=1.0)
        assert not th.eligible(0.41, q_min=1.0)
        assert th.nonmin_threshold(0.99) == 0.4
        assert th.th_min == 1.0

    def test_paper_default_is_variable_09(self):
        cfg = SimulationConfig.paper()
        assert cfg.thresholds.relative_factor == 0.9
        assert cfg.thresholds.th_min == 0.0


class TestConfigValidation:
    def test_unknown_routing(self):
        with pytest.raises(ValueError, match="unknown routing"):
            SimulationConfig(routing="magic")

    def test_unknown_escape(self):
        with pytest.raises(ValueError, match="escape"):
            SimulationConfig(escape="wormhole")

    def test_ofar_requires_escape(self):
        with pytest.raises(ValueError, match="escape"):
            SimulationConfig(routing="ofar", escape="none")

    def test_buffer_must_hold_packet(self):
        with pytest.raises(ValueError, match="whole packet"):
            SimulationConfig(local_buffer=4, packet_size=8)

    def test_baselines_need_ordered_vcs(self):
        with pytest.raises(ValueError, match="VCs"):
            SimulationConfig(routing="val", local_vcs=2, escape="none")
        with pytest.raises(ValueError, match="VCs"):
            SimulationConfig(routing="pb", global_vcs=1, escape="none")
        # MIN only needs 2 local / 1 global.
        SimulationConfig(routing="min", local_vcs=2, global_vcs=1, escape="none")

    def test_ofar_allows_reduced_vcs(self):
        """The Fig. 9 configuration must be constructible."""
        cfg = SimulationConfig(
            routing="ofar", escape="embedded", local_vcs=2, global_vcs=1
        )
        assert cfg.local_vcs == 2


class TestPresets:
    def test_paper_preset_matches_methodology(self):
        cfg = SimulationConfig.paper()
        assert cfg.h == 6
        assert cfg.packet_size == 8
        assert (cfg.local_latency, cfg.global_latency) == (10, 100)
        assert (cfg.local_buffer, cfg.global_buffer) == (32, 256)
        assert (cfg.local_vcs, cfg.global_vcs, cfg.injection_vcs) == (3, 2, 3)
        assert cfg.allocator_iterations == 3
        assert cfg.escape == "physical"

    def test_paper_preset_baseline_disables_escape(self):
        assert SimulationConfig.paper(routing="pb").escape == "none"

    def test_small_preset(self):
        cfg = SimulationConfig.small(h=3, routing="min")
        assert cfg.h == 3
        assert cfg.escape == "none"

    def test_with_routing_switches_escape(self):
        base = SimulationConfig.small(h=2, routing="ofar")
        pb = base.with_routing("pb")
        assert pb.escape == "none"
        back = pb.with_routing("ofar")
        assert back.escape == "physical"

    def test_replace(self):
        cfg = SimulationConfig.small(h=2).replace(seed=99)
        assert cfg.seed == 99

    def test_pb_period_defaults_to_local_latency(self):
        cfg = SimulationConfig.small(h=2, routing="pb")
        assert cfg.pb_period == cfg.local_latency
        cfg2 = cfg.replace(pb_update_period=7)
        assert cfg2.pb_period == 7

    def test_frozen(self):
        cfg = SimulationConfig.small(h=2)
        with pytest.raises(Exception):
            cfg.h = 5


class TestSerialization:
    def test_roundtrip(self):
        cfg = SimulationConfig.paper(routing="ofar-l", seed=42)
        back = SimulationConfig.from_json(cfg.to_json())
        assert back == cfg

    def test_roundtrip_static_thresholds(self):
        cfg = SimulationConfig.small(
            h=3, thresholds=ThresholdConfig.static(0.8, 0.3)
        )
        back = SimulationConfig.from_json(cfg.to_json())
        assert back.thresholds == cfg.thresholds

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            SimulationConfig.from_json('{"h": 2, "warp_factor": 9}')

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.from_json("[1, 2]")

    def test_validation_applies_on_load(self):
        cfg = SimulationConfig.small(h=2, routing="val")
        import json
        data = json.loads(cfg.to_json())
        data["local_vcs"] = 1  # illegal for VAL
        with pytest.raises(ValueError, match="VCs"):
            SimulationConfig.from_json(json.dumps(data))
