"""Tests for network assembly, grant execution and conservation."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.network.network import Network
from repro.topology.dragonfly import PortKind


def net_for(routing="min", h=2, **overrides):
    return Network(SimulationConfig.small(h=h, routing=routing, **overrides))


class TestAssembly:
    def test_router_count(self):
        net = net_for()
        assert len(net.routers) == net.topo.num_routers

    def test_port_counts_baseline(self):
        net = net_for("min")
        for rt in net.routers:
            assert len(rt.in_bufs) == net.topo.ports_per_router
            assert len(rt.out) == net.topo.ports_per_router

    def test_port_counts_physical_ring(self):
        net = net_for("ofar", escape="physical")
        for rt in net.routers:
            assert len(rt.in_bufs) == net.topo.ports_per_router + 1
            assert rt.in_kind[net.topo.ring_port] is PortKind.RING
            assert rt.out[net.topo.ring_port].kind is PortKind.RING

    def test_embedded_ring_extra_vc(self):
        net = net_for("ofar", escape="embedded")
        cfg = net.config
        ring_channels = 0
        for rt in net.routers:
            for ch in rt.out:
                if ch.kind is PortKind.LOCAL:
                    base = cfg.local_vcs
                elif ch.kind is PortKind.GLOBAL:
                    base = cfg.global_vcs
                else:
                    continue
                if ch.ring_vc >= 0:
                    ring_channels += 1
                    assert ch.num_vcs == base + 1
                    assert ch.ring_vc == base
                else:
                    assert ch.num_vcs == base
        # Exactly one outgoing ring channel per router.
        assert ring_channels == net.topo.num_routers

    def test_escape_hop_none_for_baselines(self):
        net = net_for("min")
        assert all(hop is None for hop in net.escape_hop)

    def test_escape_hop_set_for_ofar(self):
        for escape in ("physical", "embedded"):
            net = net_for("ofar", escape=escape)
            assert all(hop is not None for hop in net.escape_hop)

    def test_upstream_wiring_consistency(self):
        """The upstream recorded for every input port must be the peer
        whose output channel targets exactly this (router, port)."""
        net = net_for("ofar", escape="physical")
        for rt in net.routers:
            for port, up in enumerate(rt.upstream):
                if up is None:
                    assert rt.in_kind[port] is PortKind.NODE
                    continue
                urid, uport = up
                ch = net.routers[urid].out[uport]
                assert ch.dest_router == rt.rid
                assert ch.dest_port == port

    def test_input_vcs_match_upstream_channel(self):
        """Receiver-side buffer count equals sender-side VC count."""
        for escape in ("physical", "embedded"):
            net = net_for("ofar", escape=escape)
            for rt in net.routers:
                for port, up in enumerate(rt.upstream):
                    if up is None:
                        continue
                    urid, uport = up
                    ch = net.routers[urid].out[uport]
                    assert len(rt.in_bufs[port]) == ch.num_vcs
                    assert rt.in_bufs[port][0].capacity == ch.capacity

    def test_latencies_by_kind(self):
        net = net_for()
        cfg = net.config
        for rt in net.routers:
            for ch in rt.out:
                if ch.kind is PortKind.LOCAL:
                    assert ch.latency == cfg.local_latency
                elif ch.kind is PortKind.GLOBAL:
                    assert ch.latency == cfg.global_latency
                elif ch.kind is PortKind.NODE:
                    assert ch.latency == cfg.ejection_latency

    def test_ejection_channel_targets_right_node(self):
        net = net_for()
        for rt in net.routers:
            for c in range(net.topo.p):
                assert rt.out[c].dest_node == rt.rid * net.topo.p + c


class TestInjectAndGrant:
    def test_try_inject_picks_emptiest_vc(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        net = sim.network
        pkt1 = sim.create_packet(0, 30)
        assert net.try_inject(pkt1, 0)
        rt = net.routers[0]
        assert sum(len(b) for b in rt.in_bufs[0]) == 1
        pkt2 = sim.create_packet(0, 31)
        assert net.try_inject(pkt2, 0)
        # Second packet must land in a different (emptier) VC.
        occupied = [len(b) for b in rt.in_bufs[0]]
        assert occupied.count(1) == 2

    def test_try_inject_full_returns_false(self):
        cfg = SimulationConfig.small(h=2, routing="min", injection_buffer=8,
                                     injection_vcs=1)
        sim = Simulator(cfg)
        net = sim.network
        assert net.try_inject(sim.create_packet(0, 30), 0)
        assert not net.try_inject(sim.create_packet(0, 31), 0)

    def test_grant_schedules_arrival_and_credit(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        net = sim.network
        pkt = sim.create_packet(0, net.topo.p * 1)  # same group, router 1
        net.try_inject(pkt, 0)
        rt = net.routers[0]
        rt.allocate(0, sim.routing, net)
        assert net.movements == 1
        ch = rt.out[pkt.cache_port]
        assert ch.busy_until == 8
        # Arrival scheduled at latency + size.
        cycles = net.pending_event_cycles()
        assert cycles == [net.config.local_latency + 8]

    def test_deliver_clears_intermediate_group(self):
        sim = Simulator(SimulationConfig.small(h=2, routing="val"))
        net = sim.network
        dst = net.topo.num_nodes - 1
        pkt = sim.create_packet(0, dst)
        pkt.intermediate_group = 0  # pretend group 0 is the target
        from repro.network.network import _EV_ARRIVAL
        net.in_flight_packets += 1
        net.schedule(3, (_EV_ARRIVAL, 2, net.topo.node_ports, 0, pkt))
        net.process_events(3)
        assert pkt.intermediate_group == -1

    def test_credit_overflow_detected(self):
        net = net_for()
        from repro.network.network import _EV_CREDIT
        net.schedule(1, (_EV_CREDIT, 0, net.topo.node_ports, 0, 999))
        with pytest.raises(AssertionError, match="credit overflow"):
            net.process_events(1)


class TestConservation:
    @pytest.mark.parametrize("routing", ["min", "val", "pb", "ofar", "ofar-l"])
    def test_conservation_during_random_run(self, routing):
        from repro.engine.runner import _pattern_rng
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing=routing)
        sim = Simulator(cfg)
        pattern = make_pattern(sim.network.topo, _pattern_rng(cfg, 1), "UN")
        sim.generator = BernoulliTraffic(pattern, 0.3, 8, sim.network.topo.num_nodes, 7)
        for _ in range(10):
            sim.run(30)
            sim.network.check_conservation()

    def test_credits_restore_after_drain(self):
        """After all traffic drains, every credit counter returns to
        capacity — the strongest flow-control invariant."""
        cfg = SimulationConfig.small(h=2, routing="ofar")
        sim = Simulator(cfg)
        rng = __import__("random").Random(3)
        n = sim.network.topo.num_nodes
        for _ in range(60):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if src != dst:
                sim.create_packet(src, dst)
        sim.run_until_drained(50_000)
        for rt in sim.network.routers:
            for ch in rt.out:
                if ch.kind is PortKind.NODE:
                    continue
                assert ch.credits == [ch.capacity] * ch.num_vcs, (
                    f"router {rt.rid} port {ch.port} leaked credits: {ch.credits}"
                )
        sim.network.check_conservation()
        assert sim.network.buffered_packets() == 0
