"""Tier-1 wiring for the engine benchmark harness.

``scripts/bench_engine.py --check`` runs a heavily shortened version of
the fixed benchmark workload.  Keeping it in the test suite guarantees
the harness itself never rots (imports, workload construction, JSON
emission) without turning CI into a benchmark session — timings from
this smoke run are meaningless and deliberately not asserted on.
"""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "scripts", "bench_engine.py")


@pytest.fixture(scope="module")
def check_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "bench.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable,
            SCRIPT,
            "--check",
            "--warmup",
            "20",
            "--cycles",
            "60",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    return proc, out


def test_check_mode_succeeds(check_run):
    proc, _ = check_run
    assert proc.returncode == 0, proc.stderr


def test_check_mode_reports_every_phase(check_run):
    proc, out = check_run
    payload = json.loads(out.read_text())
    assert [ph["pattern"] for ph in payload["phases"]] == [
        p["pattern"] for p in payload["workload"]["phases"]
    ]
    for ph in payload["phases"]:
        assert ph["cycles_per_sec"] > 0
        assert ph["ejected_packets"] > 0  # the workload actually moved traffic
    assert payload["combined_cycles_per_sec"] > 0
    # Stdout carries the human-readable per-phase summary.
    assert "combined:" in proc.stdout


def test_telemetry_check_mode(tmp_path):
    """--telemetry --check exercises the off/on alternating harness,
    including the sampling-must-not-perturb ejected-count cross-check."""
    out = tmp_path / "bench_telemetry.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable, SCRIPT, "--telemetry", "--check",
            "--warmup", "20", "--cycles", "120", "--out", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert "combined_overhead" in payload
    for ph in payload["phases"]:
        assert ph["off_cycles_per_sec"] > 0 and ph["cycles_per_sec"] > 0
        assert ph["ejected_packets"] > 0
    assert "sampling overhead" in proc.stdout


def test_backend_check_mode(tmp_path):
    """--backend array --check runs the engine A/B harness with the
    per-phase state-digest cross-check — the CI gate on the backends'
    bit-for-bit contract (a divergence exits non-zero)."""
    out = tmp_path / "bench_array.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable, SCRIPT, "--backend", "array", "--check",
            "--warmup", "20", "--cycles", "120", "--out", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["backend"] == "array"
    assert payload["combined_speedup"] > 0
    for ph in payload["phases"]:
        assert ph["object_cycles_per_sec"] > 0 and ph["cycles_per_sec"] > 0
        assert ph["ejected_packets"] > 0
        assert len(ph["state_digest"]) == 64  # the cross-checked digest
    assert "speedup" in proc.stdout


def test_backend_unknown_name_fails(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable, SCRIPT, "--backend", "cuda", "--check",
            "--warmup", "5", "--cycles", "20",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=300,
    )
    assert proc.returncode != 0
    assert "unknown engine backend" in proc.stderr
    assert list(tmp_path.iterdir()) == []


def test_check_mode_writes_no_file_by_default(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--check", "--warmup", "5", "--cycles", "20"],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert list(tmp_path.iterdir()) == []  # smoke mode must not litter
