"""Tests for the fault-tolerant, cache-aware sweep orchestrator.

Covers the failure paths the grid must survive (a worker that raises, a
worker killed mid-point, a stuck worker hitting the timeout, a corrupt
store entry) and the determinism contract: cache hits and resumed
sweeps produce LoadPoints bit-identical to a sequential fresh run.
"""

import importlib.util
import os
import pathlib
import signal
import time

import pytest

from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.orchestrator import (
    Orchestrator,
    OrchestratorError,
    summarize,
)
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.experiments.common import TINY

# ----------------------------------------------------------------------
# Module-level fault-injection workers (must be addressable by name in
# forked worker processes).
# ----------------------------------------------------------------------

INJECTED_BAD_LOAD = 0.2


def _fail_on_bad_load(spec):
    if spec.load == INJECTED_BAD_LOAD:
        raise RuntimeError("injected worker failure")
    return run_spec(spec)


def _kill_on_bad_load(spec):
    if spec.load == INJECTED_BAD_LOAD:
        os.kill(os.getpid(), signal.SIGKILL)
    return run_spec(spec)


def _sleep_forever(spec):
    time.sleep(300)


def _raise_value_error(spec):
    raise ValueError("inline boom")


_FLAKY_DIR = None  # set by the retry test; inherited by forked workers


def _flaky_once(spec):
    marker = pathlib.Path(_FLAKY_DIR) / spec.fingerprint()
    if not marker.exists():
        marker.write_text("first attempt")
        raise RuntimeError("flaky first attempt")
    return run_spec(spec)


def specs(loads, routing="min", seed=3):
    cfg = SimulationConfig.small(h=2, routing=routing, seed=seed)
    return [RunSpec(cfg, "UN", load, 100, 100) for load in loads]


class TestSequentialEquivalence:
    def test_inline_matches_direct(self):
        grid = specs([0.1, 0.3])
        assert Orchestrator(workers=0).run_points(grid) == [run_spec(s) for s in grid]

    def test_process_pool_matches_direct(self):
        grid = specs([0.1, 0.3], routing="ofar")
        assert Orchestrator(workers=2).run_points(grid) == [run_spec(s) for s in grid]

    def test_results_in_spec_order(self):
        grid = specs([0.3, 0.1, 0.2])
        results = Orchestrator(workers=3).run(grid)
        assert [r.spec.load for r in results] == [0.3, 0.1, 0.2]
        assert all(r.status == "done" for r in results)

    def test_validation(self):
        with pytest.raises(ValueError):
            Orchestrator(workers=-1)
        with pytest.raises(ValueError):
            Orchestrator(retries=-1)
        with pytest.raises(ValueError):
            Orchestrator(timeout=0)


class TestFailurePaths:
    def test_raising_worker_recorded_not_fatal(self):
        grid = specs([0.1, INJECTED_BAD_LOAD, 0.3])
        results = Orchestrator(
            workers=2, retries=1, worker=_fail_on_bad_load
        ).run(grid)
        assert [r.status for r in results] == ["done", "failed", "done"]
        bad = results[1]
        assert bad.attempts == 2  # retried once, then recorded
        assert "injected worker failure" in bad.error
        # The healthy points are untouched by the neighbour's failure.
        assert results[0].point == run_spec(grid[0])
        assert results[2].point == run_spec(grid[2])

    def test_worker_killed_mid_point_recovers(self):
        """SIGKILL (OOM-killer style) degrades to a recorded failure."""
        grid = specs([0.1, INJECTED_BAD_LOAD])
        results = Orchestrator(
            workers=2, retries=1, worker=_kill_on_bad_load
        ).run(grid)
        assert results[0].status == "done"
        assert results[0].point == run_spec(grid[0])
        assert results[1].status == "failed"
        assert results[1].attempts == 2
        assert "worker died" in results[1].error

    def test_timeout_kills_stuck_worker(self):
        grid = specs([0.1])
        t0 = time.monotonic()
        results = Orchestrator(
            workers=1, retries=0, timeout=0.3, worker=_sleep_forever
        ).run(grid)
        assert time.monotonic() - t0 < 30  # killed, not waited out
        assert results[0].status == "failed"
        assert "timed out" in results[0].error

    def test_retry_succeeds_after_transient_failure(self, tmp_path):
        global _FLAKY_DIR
        _FLAKY_DIR = str(tmp_path)
        grid = specs([0.1])
        results = Orchestrator(workers=1, retries=1, worker=_flaky_once).run(grid)
        assert results[0].status == "done"
        assert results[0].attempts == 2
        assert results[0].point == run_spec(grid[0])

    def test_strict_mode_raises_original_exception_inline(self):
        with pytest.raises(ValueError, match="inline boom"):
            Orchestrator(workers=0, retries=0, worker=_raise_value_error).run_points(
                specs([0.1])
            )

    def test_strict_mode_raises_orchestrator_error_from_pool(self):
        with pytest.raises(OrchestratorError, match="failed after 1 attempt"):
            Orchestrator(workers=1, retries=0, worker=_fail_on_bad_load).run_points(
                specs([INJECTED_BAD_LOAD])
            )


class TestCacheAndResume:
    def test_cache_hits_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = specs([0.1, 0.3], routing="ofar")
        fresh = Orchestrator(workers=2, store=store).run(grid)
        again = Orchestrator(workers=2, store=store).run(grid)
        assert [r.status for r in fresh] == ["done", "done"]
        assert [r.status for r in again] == ["cached", "cached"]
        assert [r.point for r in again] == [run_spec(s) for s in grid]

    def test_resume_picks_up_at_first_missing_point(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = specs([0.1, 0.2, 0.3])
        # Simulate a sweep killed after two points: only they are stored.
        Orchestrator(workers=0, store=store).run(grid[:2])
        assert len(store) == 2
        resumed = Orchestrator(workers=0, store=store).run(grid)
        assert [r.status for r in resumed] == ["cached", "cached", "done"]
        assert [r.point for r in resumed] == [run_spec(s) for s in grid]
        assert len(store) == 3

    def test_corrupt_store_entry_reruns(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = specs([0.1])
        Orchestrator(workers=0, store=store).run(grid)
        store.path_for(grid[0].fingerprint()).write_text("{ truncated")
        results = Orchestrator(workers=0, store=store).run(grid)
        assert results[0].status == "done"  # re-ran, did not crash
        assert results[0].point == run_spec(grid[0])
        assert store.get(grid[0]) == results[0].point  # entry healed

    def test_no_cache_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = specs([0.1])
        Orchestrator(workers=0, store=store).run(grid)
        results = Orchestrator(workers=0, store=store, use_cache=False).run(grid)
        assert results[0].status == "done"
        assert store.stats.writes == 2

    def test_overlapping_sweep_reuses_points(self, tmp_path):
        store = ResultStore(tmp_path)
        Orchestrator(workers=0, store=store).run(specs([0.1, 0.2]))
        wider = Orchestrator(workers=0, store=store).run(specs([0.1, 0.2, 0.3, 0.4]))
        assert [r.status for r in wider] == ["cached", "cached", "done", "done"]


class TestObservability:
    def test_progress_events(self, tmp_path):
        events = []
        store = ResultStore(tmp_path)
        grid = specs([0.1, INJECTED_BAD_LOAD, 0.3])
        Orchestrator(
            workers=0, retries=0, store=store, observer=events.append,
            worker=_fail_on_bad_load,
        ).run(grid)
        assert len(events) == 3  # one snapshot per resolved point
        assert [e.resolved for e in events] == [1, 2, 3]
        last = events[-1]
        assert (last.done, last.cached, last.failed) == (2, 0, 1)
        assert last.total == 3
        assert last.eta_seconds == 0.0
        assert last.render().startswith("[sweep 3/3]")

    def test_summarize(self):
        results = Orchestrator(workers=0, retries=0, worker=_fail_on_bad_load).run(
            specs([0.1, INJECTED_BAD_LOAD])
        )
        counts = summarize(results)
        assert counts["total"] == 2
        assert counts["done"] == 1
        assert counts["failed"] == 1
        assert counts["cached"] == 0


class TestTier1Smoke:
    def test_two_point_orchestrated_sweep(self, tmp_path):
        """The satellite smoke: a two-point TINY sweep with workers=2,
        one injected worker failure and one cached point, completing
        fast and leaving the healthy grid intact."""
        store = ResultStore(tmp_path)
        good = TINY.spec("ofar", "UN", 0.1)
        bad = TINY.spec("ofar", "UN", INJECTED_BAD_LOAD)
        sequential = run_spec(good)
        store.put(good, sequential)  # pre-completed: the cached point
        results = Orchestrator(
            workers=2, retries=0, store=store, worker=_fail_on_bad_load
        ).run([good, bad])
        assert [r.status for r in results] == ["cached", "failed"]
        assert results[0].point == sequential  # cache hit == fresh run
        assert "injected worker failure" in results[1].error
        counts = summarize(results)
        assert (counts["cached"], counts["failed"]) == (1, 1)


# ----------------------------------------------------------------------
# Cache-hit / resume determinism through the fingerprint script's lens
# ----------------------------------------------------------------------

def _load_fingerprint_script():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "scripts" / "determinism_fingerprint.py"
    )
    loaded = importlib.util.spec_from_file_location("determinism_fingerprint", path)
    module = importlib.util.module_from_spec(loaded)
    loaded.loader.exec_module(module)
    return module


class TestFingerprintDeterminism:
    def test_resumed_sweep_fingerprint_equals_fresh(self, tmp_path):
        """The acceptance check: the exact-value fingerprint of a
        store-backed resumed sweep equals a sequential fresh run's."""
        df = _load_fingerprint_script()
        grid = specs([0.1, 0.35], routing="ofar", seed=7)

        def call(run, s):
            return df._point_dict(
                run(s.config, s.pattern_spec, s.load, warmup=s.warmup,
                    measure=s.measure)
            )

        sequential = {s.fingerprint(): df._point_dict(run_spec(s)) for s in grid}

        store = ResultStore(tmp_path)
        run_a = df.orchestrated_runner(store, workers=2)
        fresh = {s.fingerprint(): call(run_a, s) for s in grid}
        run_b = df.orchestrated_runner(store, workers=2)  # resume: all cache hits
        resumed = {s.fingerprint(): call(run_b, s) for s in grid}

        assert fresh == sequential
        assert resumed == sequential
        assert store.stats.hits == len(grid)  # the resume really was cached


class TestOrchestratorFromArgs:
    """The shared --workers/--timeout/--retries flag wiring.

    Regressions pinned here: --timeout without --workers used to build
    an in-process orchestrator whose timeout was silently never
    enforced, and --retries alone never built an orchestrator at all
    (the legacy sequential path raises on the first failure, so the
    retry budget was dead).
    """

    @staticmethod
    def _parse(argv):
        from repro.experiments.common import orchestration_options

        return orchestration_options().parse_args(argv)

    def _build(self, argv):
        from repro.experiments.common import orchestrator_from_args

        return orchestrator_from_args(self._parse(argv))

    def test_no_flags_means_legacy_sequential(self):
        assert self._build([]) is None

    def test_retries_alone_builds_orchestrator(self):
        orch = self._build(["--retries", "3"])
        assert orch is not None
        assert orch.retries == 3
        assert orch.workers == 0  # in-process, but with a retry budget

    def test_default_retries_alone_does_not(self):
        assert self._build(["--retries", "1"]) is None

    def test_timeout_promotes_to_one_worker(self):
        orch = self._build(["--timeout", "5"])
        assert orch is not None
        assert orch.workers == 1  # enforced by killing the worker process
        assert orch.timeout == 5.0

    def test_timeout_keeps_explicit_workers(self):
        orch = self._build(["--timeout", "5", "--workers", "3"])
        assert orch.workers == 3
        assert orch.timeout == 5.0

    def test_timeout_with_inline_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers 0"):
            self._build(["--timeout", "5", "--workers", "0"])
