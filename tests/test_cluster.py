"""Tests for the cluster scenario subsystem (repro.cluster).

Covers the three layers the subsystem stacks: the pluggable schedulers
(FCFS head-of-line blocking, EASY backfill's shadow-reservation rule,
runtime registration), the deterministic compilation of a scenario spec
into a pinned workload, and the network execution path — bit-identical
reruns across backends, blast-radius attribution, checkpoint resume,
store sidecar caching, and the campaign `kind: scenario` integration.
"""

import json

import pytest

from repro.analysis.store import ResultStore
from repro.campaign import CampaignError, CampaignSpec, emit, run_campaign
from repro.cluster.runner import (
    SIDECAR_KIND,
    ScenarioResult,
    realize_faults,
    run_scenario,
    run_scenario_cached,
    run_scenario_with_telemetry,
)
from repro.cluster.schedule import (
    SCHEDULERS,
    EasyScheduler,
    FCFSScheduler,
    Machine,
    ScheduledJob,
    compile_scenario,
    register_scheduler,
)
from repro.cluster.spec import (
    ArrivalSpec,
    FaultEvent,
    FaultScheduleSpec,
    JobMix,
    ScenarioSpec,
)
from repro.engine.config import SimulationConfig
from repro.engine.runspec import RunSpec
from repro.topology.dragonfly import Dragonfly


@pytest.fixture
def topo():
    return Dragonfly(2)  # 9 groups x 4 routers x 2 nodes = 72 nodes


def job(name, size, duration=1_000, arrival=0):
    return ScheduledJob(name=name, size=size, duration=duration,
                        pattern="UN", load=0.1, arrival=arrival)


def start_job(machine, j, now=0):
    assert machine.try_place(j)
    j.start, j.finish = now, now + j.duration
    return j


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
class TestSchedulers:
    def test_fcfs_head_of_line_blocks_everyone(self, topo):
        machine = Machine(topo, "contiguous", 0)
        running = [start_job(machine, job("big", 70))]
        queue = [job("head", 10), job("tiny", 2)]
        started = FCFSScheduler().schedule(5, queue, machine, running)
        # head does not fit (2 nodes free), so tiny must wait too
        assert started == []
        assert [j.name for j in queue] == ["head", "tiny"]

    def test_easy_backfills_behind_the_shadow(self, topo):
        machine = Machine(topo, "contiguous", 0)
        running = [start_job(machine, job("big", 70, duration=1_000))]
        queue = [job("head", 10), job("tiny", 2, duration=100)]
        started = EasyScheduler().schedule(5, queue, machine, running)
        # tiny fits now and finishes by the shadow (big's release at
        # 1000), so it jumps the blocked head
        assert [j.name for j in started] == ["tiny"]
        assert [j.name for j in queue] == ["head"]
        assert started[0].start == 5 and started[0].finish == 105

    def test_easy_never_delays_the_head(self, topo):
        machine = Machine(topo, "contiguous", 0)
        running = [start_job(machine, job("big", 70, duration=1_000))]
        # head needs 71 nodes: at big's release 72 are available, so
        # only 1 node is spare at the shadow — a long 2-node job would
        # push the head past its reservation and must stay queued
        queue = [job("head", 71), job("long", 2, duration=5_000)]
        started = EasyScheduler().schedule(5, queue, machine, running)
        assert started == []
        assert [j.name for j in queue] == ["head", "long"]

    def test_easy_long_job_fits_the_spare_count(self, topo):
        machine = Machine(topo, "contiguous", 0)
        running = [start_job(machine, job("big", 70, duration=1_000))]
        # head needs 10: 62 nodes spare at the shadow, so even a job
        # outlasting the shadow may start when it fits that count
        queue = [job("head", 10), job("long", 2, duration=5_000)]
        started = EasyScheduler().schedule(5, queue, machine, running)
        assert [j.name for j in started] == ["long"]

    def test_registry_is_pluggable(self):
        class SJFScheduler(FCFSScheduler):
            name = "test-sjf"

            def schedule(self, now, queue, machine, running):
                queue.sort(key=lambda j: (j.size, j.name))
                return super().schedule(now, queue, machine, running)

        register_scheduler("test-sjf", SJFScheduler)
        try:
            spec = ScenarioSpec(scheduler="test-sjf", horizon=500)
            assert spec.scheduler == "test-sjf"
        finally:
            del SCHEDULERS["test-sjf"]
        with pytest.raises(ValueError, match="scheduler"):
            ScenarioSpec(scheduler="test-sjf")


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
SCENARIO = ScenarioSpec(
    arrivals=ArrivalSpec(kind="poisson", rate=0.02, jobs=5),
    mix=JobMix(sizes=((4, 1.0), (8, 1.0)), durations=((300, 1.0),),
               patterns=(("UN", 1.0),), loads=((0.25, 1.0),)),
    scheduler="easy",
    placement="random-nodes",
    faults=FaultScheduleSpec(rate=0.004, count=2, repair=300, seed=3),
    horizon=1_200,
    seed=9,
    blast_window=150,
)


def scenario_spec(routing="ofar", backend="object", scenario=SCENARIO):
    cfg = SimulationConfig.small(h=2, routing=routing, seed=19)
    return RunSpec.for_scenario(cfg, scenario, backend=backend)


def doc(result) -> str:
    """Canonical JSON of a ScenarioResult: byte-comparable where plain
    dict equality is not (empty blast windows are NaN, and NaN != NaN)."""
    return json.dumps(result.to_jsonable(), sort_keys=True)


class TestCompile:
    def test_deterministic(self, topo):
        a = compile_scenario(SCENARIO, topo)
        b = compile_scenario(SCENARIO, topo)
        assert a.workload == b.workload
        assert a.workload.to_jsonable() == b.workload.to_jsonable()
        assert a.utilization == b.utilization
        assert a.makespan == b.makespan

    def test_started_jobs_are_fully_pinned(self, topo):
        compiled = compile_scenario(SCENARIO, topo)
        assert compiled.started, "scenario must start at least one job"
        for js in compiled.workload.jobs:
            assert js.node_list is not None
            assert js.start is not None and js.stop > js.start

    def test_trace_arrivals_land_on_exact_cycles(self, topo):
        scenario = ScenarioSpec(
            arrivals=ArrivalSpec(kind="trace", interarrivals=(10, 20, 5)),
            mix=JobMix(sizes=((4, 1.0),), durations=((100, 1.0),)),
            horizon=1_000,
        )
        compiled = compile_scenario(scenario, topo)
        assert [j.arrival for j in compiled.jobs] == [10, 30, 35]

    def test_oversized_mix_rejected(self, topo):
        scenario = ScenarioSpec(mix=JobMix(sizes=((100, 1.0),)), horizon=500)
        with pytest.raises(ValueError, match="exceeds the machine"):
            compile_scenario(scenario, topo)

    def test_fault_realization_validates_and_sorts(self, topo):
        faults = FaultScheduleSpec(
            events=(FaultEvent(700, "restore", 1, 3),
                    FaultEvent(100, "fail", 1, 3)),
            rate=0.004, count=2, repair=300, seed=3,
        )
        events = realize_faults(faults, topo, 1_200)
        assert events == sorted(events)
        assert (100, "fail", 1, 3) in events
        for _, _, router, port in events:
            assert 0 <= router < topo.num_routers
            assert topo.node_ports <= port <= topo.ports_per_router
        with pytest.raises(ValueError, match="not a router link port"):
            realize_faults(
                FaultScheduleSpec(events=(FaultEvent(10, "fail", 0, 0),)),
                topo, 1_200,
            )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class TestRunScenario:
    def test_rerun_is_bit_identical(self):
        spec = scenario_spec()
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert doc(a) == doc(b)

    def test_array_backend_matches_object(self):
        pytest.importorskip("numpy")
        base = run_scenario(scenario_spec(backend="object"))
        arr = run_scenario(scenario_spec(backend="array"))
        assert doc(base) == doc(arr)

    def test_result_round_trips_through_json(self):
        result = run_scenario(scenario_spec())
        again = ScenarioResult.from_jsonable(result.to_jsonable())
        assert doc(again) == doc(result)

    def test_blast_rows_cover_concurrent_jobs_only(self, topo):
        result = run_scenario(scenario_spec())
        compiled = compile_scenario(SCENARIO, topo)
        fail_cycles = {c for c, a, _, _ in
                       realize_faults(SCENARIO.faults, topo, SCENARIO.horizon)
                       if a == "fail"}
        assert result.blast, "seeded faults must hit running jobs"
        for row in result.blast:
            assert row.cycle in fail_cycles
            j = next(x for x in compiled.started if x.name == row.job)
            assert j.start <= row.cycle < min(j.finish, SCENARIO.horizon)

    def test_scheduling_columns_identical_across_routings(self):
        """The schedule is compiled before the network runs, so only
        network metrics may differ between routings."""
        a = run_scenario(scenario_spec(routing="min"))
        b = run_scenario(scenario_spec(routing="ofar"))
        assert a.makespan == b.makespan
        assert a.fairness == b.fairness
        assert a.utilization == b.utilization
        assert [(r.name, r.wait, r.slowdown) for r in a.jobs] == \
               [(r.name, r.wait, r.slowdown) for r in b.jobs]

    def test_telemetry_does_not_perturb(self):
        from repro.telemetry.config import TelemetryConfig

        spec = scenario_spec()
        plain = run_scenario(spec)
        watched, series = run_scenario_with_telemetry(
            spec, TelemetryConfig(interval=50)
        )
        assert doc(watched) == doc(plain)
        assert series is not None and series.samples
        assert any(s.job_flow for s in series.samples)


class TestCheckpointAndCache:
    def test_checkpointed_run_matches_plain(self, tmp_path):
        from repro.snapshot.checkpoint import run_spec_checkpointed

        spec = scenario_spec()
        baseline = run_scenario(spec)
        store = ResultStore(tmp_path)
        total = run_spec_checkpointed(spec, store.root, snapshot_every=150)
        assert total == baseline.total
        payload = store.get_sidecar(SIDECAR_KIND, spec)
        assert json.dumps(payload, sort_keys=True) == doc(baseline)

    def test_sidecar_cache_hit_skips_the_network(self, tmp_path, monkeypatch):
        spec = scenario_spec()
        store = ResultStore(tmp_path)
        first = run_scenario_cached(spec, store)
        monkeypatch.setattr(
            "repro.cluster.runner.run_scenario",
            lambda _s: pytest.fail("cache hit must not re-run the scenario"),
        )
        second = run_scenario_cached(spec, store)
        assert doc(second) == doc(first)

    def test_corrupt_sidecar_recomputes(self, tmp_path):
        spec = scenario_spec()
        store = ResultStore(tmp_path)
        baseline = run_scenario_cached(spec, store)
        store.put_sidecar(SIDECAR_KIND, spec, {"format": 999})
        again = run_scenario_cached(spec, store)
        assert doc(again) == doc(baseline)
        # and the overwrite healed the sidecar
        assert json.dumps(store.get_sidecar(SIDECAR_KIND, spec),
                          sort_keys=True) == doc(baseline)


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
def scenario_mapping(**overrides):
    data = {
        "name": "churn",
        "kind": "scenario",
        "scale": "tiny",
        "combination": {"routing": ["min", "ofar"]},
        "scenario": {
            "arrivals": {"kind": "poisson", "rate": 0.02, "jobs": 4},
            "mix": {"sizes": [[4, 1.0]], "durations": [[300, 1.0]],
                    "loads": [[0.25, 1.0]]},
            "scheduler": "easy",
            "placement": "random-nodes",
            "faults": {"rate": 0.004, "count": 1, "repair": 200, "seed": 3},
            "horizon": 900,
            "seed": 9,
            "blast_window": 100,
        },
        "post": ["scenario_table", "blast_radius"],
    }
    data.update(overrides)
    return data


class TestScenarioCampaign:
    def test_runs_and_shares_the_schedule(self):
        campaign = CampaignSpec.from_mapping(scenario_mapping())
        run = run_campaign(campaign)
        assert len(run.outcomes) == 2
        assert run.scenario_results is not None
        a, b = run.scenario_results
        assert a.makespan == b.makespan
        assert a.fairness == b.fairness
        tables = dict(emit(run))
        assert "scenario_table" in tables and "blast_radius" in tables
        assert tables["scenario_table"].rows

    def test_orchestrated_matches_in_process(self, tmp_path):
        from repro.engine.orchestrator import Orchestrator

        campaign = CampaignSpec.from_mapping(scenario_mapping())
        plain = run_campaign(campaign)
        store = ResultStore(tmp_path)
        orch = run_campaign(campaign, Orchestrator(workers=0, store=store))
        assert [doc(r) for r in plain.scenario_results] == \
               [doc(r) for r in orch.scenario_results]
        # resume: everything cached
        again = run_campaign(campaign, Orchestrator(workers=0, store=store))
        assert again.counts["cached"] == again.counts["total"]

    def test_pattern_axis_rejected(self):
        with pytest.raises(CampaignError, match="job mix"):
            CampaignSpec.from_mapping(scenario_mapping(
                combination={"routing": ["min"], "pattern": ["UN"]}
            ))

    def test_windows_rejected(self):
        with pytest.raises(CampaignError, match="windows"):
            CampaignSpec.from_mapping(scenario_mapping(
                windows={"warmup": 10, "measure": 10}
            ))

    def test_scenario_section_needs_scenario_kind(self):
        data = scenario_mapping()
        data["kind"] = "steady"
        data["combination"] = {"routing": ["min"], "pattern": ["UN"],
                               "load": [0.1]}
        with pytest.raises(CampaignError, match="scenario"):
            CampaignSpec.from_mapping(data)

    def test_scenario_kind_needs_scenario_section(self):
        data = scenario_mapping()
        del data["scenario"]
        with pytest.raises(CampaignError, match="scenario"):
            CampaignSpec.from_mapping(data)
