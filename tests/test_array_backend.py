"""Cross-backend equivalence: the array engine vs the reference engine.

The contract under test is the strongest one the engine layer makes:
for ANY RunSpec, the ``"array"`` backend is bit-for-bit the ``"object"``
backend — identical ``state_digest()`` at every cycle, identical
LoadPoint JSON, identical snapshot bytes.  The grid covers every
routing policy, the pattern families with different code paths
(uniform, adversarial, shift), link faults, and a multi-job workload;
a hypothesis fuzzer walks random small configurations.

Everything here compares *trajectories*, not summaries, wherever it is
cheap to do so: a digest match at cycle N proves the entire mutable
state agrees, which is how a divergence would be localized.
"""

import dataclasses
import json

import pytest

from repro.engine.backend import (
    EngineBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.engine.config import SimulationConfig
from repro.engine.runner import build_steady_sim, run_spec
from repro.engine.runspec import RunSpec
from repro.workloads.spec import JobSpec, WorkloadSpec


def small_spec(routing="ofar", pattern="UN", load=0.3, seed=5, backend="object",
               warmup=80, measure=150, **overrides):
    if routing == "par":
        overrides.setdefault("local_vcs", 4)  # PAR's deadlock-freedom floor
    cfg = SimulationConfig.small(h=2, routing=routing, seed=seed, **overrides)
    return RunSpec(cfg, pattern, load, warmup, measure, backend=backend)


def point_json(point) -> str:
    return json.dumps(dataclasses.asdict(point), sort_keys=True)


def lockstep_digests(spec, cycles, every=25, faults=()):
    """Run both backends side by side, asserting digests every ``every``
    cycles; returns the pair of simulators for further checks."""
    pair = []
    for name in ("object", "array"):
        be = get_backend(name)
        sim = be.build(dataclasses.replace(spec, backend=name))
        for router, port in faults:
            sim.network.fail_link(router, port)
        pair.append(sim)
    obj, arr = pair
    for c in range(cycles):
        obj.step()
        arr.step()
        if (c + 1) % every == 0:
            assert obj.state_digest() == arr.state_digest(), (
                f"digest diverged by cycle {c + 1}"
            )
    assert obj.state_digest() == arr.state_digest()
    return obj, arr


class TestRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ["array", "object"]

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            get_backend("cuda")

    def test_backends_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), EngineBackend)

    def test_resolve_backend_honors_spec(self):
        assert resolve_backend(small_spec(backend="array")).name == "array"
        assert resolve_backend(small_spec(backend="object")).name == "object"

    def test_backend_excluded_from_fingerprint(self):
        a = small_spec(backend="object")
        b = dataclasses.replace(a, backend="array")
        assert a.fingerprint() == b.fingerprint()
        assert "backend" not in a.to_jsonable()


POLICIES = ["min", "val", "ugal", "pb", "par", "ofar"]


class TestEquivalenceGrid:
    @pytest.mark.parametrize("routing", POLICIES)
    @pytest.mark.parametrize("pattern", ["UN", "ADV+2", "ADV-LOCAL", "MIX2"])
    def test_loadpoint_identical(self, routing, pattern):
        spec = small_spec(routing=routing, pattern=pattern)
        obj = run_spec(dataclasses.replace(spec, backend="object"))
        arr = run_spec(dataclasses.replace(spec, backend="array"))
        assert point_json(obj) == point_json(arr)

    @pytest.mark.parametrize("routing", POLICIES)
    def test_digest_lockstep(self, routing):
        spec = small_spec(routing=routing, pattern="ADV+2", load=0.45)
        lockstep_digests(spec, 200)

    def test_digest_lockstep_high_load_ofar(self):
        # Saturated OFAR exercises misrouting and escape-ring entry —
        # the classifier's FALLBACK paths.
        spec = small_spec(pattern="ADV+2", load=0.9)
        obj, arr = lockstep_digests(spec, 300)
        assert arr.network.ring_entry_stalls == obj.network.ring_entry_stalls

    def test_mirrors_consistent_after_run(self):
        spec = small_spec(pattern="ADV+2", load=0.6)
        _, arr = lockstep_digests(spec, 250)
        arr.network.arrays.verify()


class TestFaultsAndWorkloads:
    def test_equivalent_with_failed_links(self):
        spec = small_spec(pattern="UN", load=0.4, seed=11)
        topo = build_steady_sim(spec).network.topo
        faults = [(0, topo.local_port(0, 1)), (3, topo.local_port(3, 0))]
        obj, arr = lockstep_digests(spec, 250, faults=faults)
        arr.network.arrays.verify()
        assert obj.network.failed_links() == arr.network.failed_links()

    def test_equivalent_after_restore(self):
        spec = small_spec(pattern="UN", load=0.4, seed=11)
        topo = build_steady_sim(spec).network.topo
        port = topo.local_port(0, 1)
        pair = []
        for name in ("object", "array"):
            sim = get_backend(name).build(dataclasses.replace(spec, backend=name))
            sim.network.fail_link(0, port)
            sim.run(100)
            sim.network.restore_link(0, port)
            sim.run(100)
            pair.append(sim)
        assert pair[0].state_digest() == pair[1].state_digest()
        pair[1].network.arrays.verify()

    def test_three_job_workload_identical(self):
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=7)
        workload = WorkloadSpec(
            jobs=(
                JobSpec(name="a", nodes=24, pattern="UN", load=0.2),
                JobSpec(name="b", nodes=24, pattern="ADV+2", load=0.3),
                JobSpec(name="c", nodes=24, pattern="SHIFT+3", load=0.25),
            ),
            placement="round-robin-groups",
        )
        points = []
        for name in ("object", "array"):
            spec = RunSpec.for_workload(cfg, workload, warmup=80, measure=150,
                                        backend=name)
            points.append(run_spec(spec))
        assert point_json(points[0]) == point_json(points[1])


class TestMeasurementProtocols:
    def test_windowed_convergence_identical(self):
        spec = small_spec(pattern="ADV+2", load=0.5, measure=120)
        obj = run_spec(dataclasses.replace(spec, backend="object", max_windows=6))
        arr = run_spec(dataclasses.replace(spec, backend="array", max_windows=6))
        assert point_json(obj) == point_json(arr)

    def test_snapshot_roundtrip_on_array_sim(self):
        from repro.snapshot import Snapshot

        spec = small_spec(pattern="ADV+2", load=0.5)
        src = get_backend("array").build(dataclasses.replace(spec, backend="array"))
        src.run(150)
        snap = Snapshot.capture(src)
        dst = get_backend("array").build(dataclasses.replace(spec, backend="array"))
        snap.restore_into(dst)
        # _on_state_applied must have rebuilt the mirrors in the restored sim.
        dst.network.arrays.verify()
        src.run(100)
        dst.run(100)
        assert src.state_digest() == dst.state_digest()

    def test_snapshot_crosses_backends(self):
        # A snapshot captured on one engine restores onto the other and
        # the trajectories stay identical: the serialized state IS the
        # behavior, independent of the engine that produced it.
        from repro.snapshot import Snapshot

        spec = small_spec(pattern="UN", load=0.45)
        src = get_backend("object").build(spec)
        src.run(150)
        snap = Snapshot.capture(src)
        dst = get_backend("array").build(dataclasses.replace(spec, backend="array"))
        snap.restore_into(dst)
        src.run(120)
        dst.run(120)
        assert src.state_digest() == dst.state_digest()


class TestVectorPassInternals:
    def test_vector_pass_gated_by_routing(self):
        arr = get_backend("array")
        assert arr.build(small_spec(backend="array"))._vector_pass
        assert not arr.build(small_spec(routing="min", backend="array"))._vector_pass

    def test_min_port_table_matches_oracle(self):
        import numpy as np

        from repro.engine.array_backend.tables import (
            group_port_table,
            min_port_table,
        )
        from repro.topology.dragonfly import Dragonfly

        for h in (2, 3):
            topo = Dragonfly(h)
            table = min_port_table(topo)
            for rid in range(topo.num_routers):
                for dst in range(0, topo.num_nodes, 3):
                    assert table[rid, dst] == topo.min_output_port(rid, dst), (
                        h, rid, dst,
                    )
            gtable = group_port_table(topo)
            for rid in range(topo.num_routers):
                g = topo.router_group(rid)
                for dg in range(topo.num_groups):
                    if dg == g:
                        assert gtable[rid, dg] == -1
                    else:
                        assert gtable[rid, dg] == topo.min_output_port_to_group(
                            rid, dg
                        ), (h, rid, dg)
            assert table.dtype == np.int16

    def test_forced_scalar_sweep_identical(self, monkeypatch):
        # With the batch gate forced high the array engine must take the
        # reference sweep path — and still produce identical digests
        # (mirror upkeep alone never perturbs).
        import repro.engine.array_backend.simulator as asim

        monkeypatch.setattr(asim, "MIN_BATCH", 10**9)
        spec = small_spec(pattern="ADV+2", load=0.5)
        lockstep_digests(spec, 150)


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestFuzzEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        routing=st.sampled_from(["min", "ugal", "ofar"]),
        pattern=st.sampled_from(["UN", "ADV+1", "ADV+2", "ADV-LOCAL", "MIX2"]),
        load=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_small_config(self, routing, pattern, load, seed):
        cfg = SimulationConfig.small(h=2, routing=routing, seed=seed)
        spec = RunSpec(cfg, pattern, load, 60, 100)
        obj = run_spec(dataclasses.replace(spec, backend="object"))
        arr = run_spec(dataclasses.replace(spec, backend="array"))
        assert point_json(obj) == point_json(arr)
