"""Tests for application-style traffic patterns."""

import random

import pytest

from repro.topology.dragonfly import Dragonfly
from repro.traffic.applications import (
    PermutationPattern,
    ShiftPattern,
    StencilPattern,
    near_square_dims,
)


@pytest.fixture
def topo():
    return Dragonfly(2)  # 72 nodes


@pytest.fixture
def rng():
    return random.Random(7)


class TestNearSquareDims:
    def test_exact_square(self):
        assert near_square_dims(36, 2) == (6, 6)

    def test_rectangular(self):
        dims = near_square_dims(72, 2)
        assert dims[0] * dims[1] == 72
        assert dims == (9, 8)

    def test_three_dims(self):
        dims = near_square_dims(5256, 3)  # the paper's node count
        assert len(dims) == 3
        prod = dims[0] * dims[1] * dims[2]
        assert prod == 5256

    def test_one_dim(self):
        assert near_square_dims(10, 1) == (10,)

    def test_prime(self):
        assert near_square_dims(7, 2) == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            near_square_dims(0, 2)


class TestStencil:
    def test_default_dims_cover_nodes(self, topo, rng):
        p = StencilPattern(topo, rng)
        assert p.dims[0] * p.dims[1] == topo.num_nodes

    def test_bad_dims_rejected(self, topo, rng):
        with pytest.raises(ValueError):
            StencilPattern(topo, rng, dims=(5, 5))

    def test_bad_mapping_rejected(self, topo, rng):
        with pytest.raises(ValueError):
            StencilPattern(topo, rng, mapping="hilbert")

    def test_never_self(self, topo, rng):
        for mapping in ("sequential", "random"):
            p = StencilPattern(topo, rng, mapping=mapping)
            for src in range(topo.num_nodes):
                for _ in range(6):
                    assert p.dest(src) != src

    def test_sequential_destinations_are_grid_neighbors(self, topo, rng):
        p = StencilPattern(topo, rng, dims=(9, 8), mapping="sequential")
        src = 30
        seen = {p.dest(src) for _ in range(300)}
        # Neighbours of rank 30 in a 9x8 periodic grid (row-major).
        expected = set()
        for axis in (0, 1):
            for direction in (1, -1):
                expected.add(p.neighbor_rank(30, axis, direction))
        assert seen <= expected
        assert len(seen) >= 3  # all four show up with high probability

    def test_sequential_mapping_preserves_locality(self, topo, rng):
        """Most sequential-stencil exchanges stay within the group."""
        p = StencilPattern(topo, rng, mapping="sequential")
        same_group = sum(
            1
            for src in range(topo.num_nodes)
            for _ in range(4)
            if topo.node_group(p.dest(src)) == topo.node_group(src)
        )
        total = topo.num_nodes * 4
        assert same_group > 0.4 * total

    def test_random_mapping_destroys_locality(self, topo, rng):
        seq = StencilPattern(topo, random.Random(1), mapping="sequential")
        rnd = StencilPattern(topo, random.Random(1), mapping="random")

        def locality(p):
            return sum(
                1
                for src in range(topo.num_nodes)
                for _ in range(4)
                if topo.node_group(p.dest(src)) == topo.node_group(src)
            )

        assert locality(rnd) < 0.6 * locality(seq)

    def test_rank_coords_roundtrip(self, topo, rng):
        p = StencilPattern(topo, rng, dims=(9, 8))
        for rank in (0, 7, 8, 35, 71):
            x, y = p.rank_coords(rank)
            assert rank == x * 8 + y

    def test_mapping_is_bijective(self, topo, rng):
        p = StencilPattern(topo, rng, mapping="random")
        assert sorted(p._rank_to_node) == list(range(topo.num_nodes))


class TestShift:
    def test_destination(self, topo, rng):
        p = ShiftPattern(topo, rng, 5)
        assert p.dest(0) == 5
        assert p.dest(topo.num_nodes - 1) == 4

    def test_invalid_shift(self, topo, rng):
        with pytest.raises(ValueError):
            ShiftPattern(topo, rng, 0)
        with pytest.raises(ValueError):
            ShiftPattern(topo, rng, topo.num_nodes)

    def test_router_shift_reproduces_local_hotspot(self, topo, rng):
        """Shift by p nodes = the §III next-router pattern for interior
        nodes."""
        p = ShiftPattern(topo, rng, topo.p)
        src = 0
        dst = p.dest(src)
        assert topo.node_router(dst) == topo.node_router(src) + 1


class TestPermutation:
    def test_is_permutation_without_fixed_points(self, topo, rng):
        p = PermutationPattern(topo, rng, seed=3)
        dsts = [p.dest(s) for s in range(topo.num_nodes)]
        assert sorted(dsts) == list(range(topo.num_nodes))
        assert all(d != s for s, d in enumerate(dsts))

    def test_deterministic_given_seed(self, topo):
        p1 = PermutationPattern(topo, random.Random(0), seed=5)
        p2 = PermutationPattern(topo, random.Random(9), seed=5)
        assert all(p1.dest(s) == p2.dest(s) for s in range(topo.num_nodes))


class TestEndToEnd:
    @pytest.mark.parametrize("pattern_cls", ["stencil", "shift", "perm"])
    def test_delivery(self, topo, pattern_cls):
        from repro.engine.config import SimulationConfig
        from repro.engine.simulator import Simulator
        from repro.traffic.generators import BernoulliTraffic

        cfg = SimulationConfig.small(h=2, routing="ofar")
        sim = Simulator(cfg)
        rng = random.Random(4)
        t = sim.network.topo
        pattern = {
            "stencil": lambda: StencilPattern(t, rng),
            "shift": lambda: ShiftPattern(t, rng, t.p),
            "perm": lambda: PermutationPattern(t, rng, seed=1),
        }[pattern_cls]()
        sim.generator = BernoulliTraffic(pattern, 0.3, 8, t.num_nodes, 3)
        sim.run(300)
        sim.generator = None
        sim.run_until_drained(200_000)
        assert sim.network.ejected_packets == sim.created_packets
