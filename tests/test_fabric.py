"""Distributed sweep fabric: the lease protocol, WorkQueue, FabricWorker.

The contract under test is the store-is-the-coordinator design
(repro.fabric): N workers sharing nothing but a store directory drain
one grid with every point executed exactly once past its final
successful attempt, the drained store indistinguishable (spec + point)
from a single-host run, zero leases left behind — including the
headline recovery path, where a SIGKILLed worker's point is reclaimed
by a peer and resumed from its mid-run checkpoint with an identical
final result.
"""

import dataclasses
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.tracing import SweepProgress
from repro.fabric import (
    FAILURE_KIND,
    FabricWorker,
    LeaseManager,
    WorkQueue,
    drain,
    fleet_status,
    lease_path,
    read_lease,
    reap,
)
from repro.snapshot.checkpoint import checkpoint_path, load_checkpoint

SRC = str(Path(repro.__file__).resolve().parents[1])


def point_doc(pt) -> dict:
    return {k: repr(v) for k, v in dataclasses.asdict(pt).items()}


def spec(load=0.2, seed=3) -> RunSpec:
    return RunSpec(
        SimulationConfig.small(h=2, routing="min", seed=seed), "UN", load,
        warmup=100, measure=100,
    )


def grid(n=4) -> list[RunSpec]:
    return [spec(load=round(0.1 * (i + 1), 2)) for i in range(n)]


def lease_files(store_root) -> list[Path]:
    return sorted(Path(store_root, "leases").glob("*.json"))


# ----------------------------------------------------------------------
# Lease protocol
# ----------------------------------------------------------------------

class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        a, b = LeaseManager(tmp_path, "a"), LeaseManager(tmp_path, "b")
        lease = a.try_claim("ff00", label="pt")
        assert lease is not None
        assert (lease.worker, lease.attempt, lease.label) == ("a", 1, "pt")
        assert b.try_claim("ff00") is None
        assert b.try_claim("ff01") is not None  # other points unaffected

    def test_release_frees_the_point(self, tmp_path):
        a, b = LeaseManager(tmp_path, "a"), LeaseManager(tmp_path, "b")
        lease = a.try_claim("ff00")
        assert a.release(lease) is True
        assert not lease_path(tmp_path, "ff00").exists()
        assert b.try_claim("ff00") is not None

    def test_release_refuses_foreign_lease(self, tmp_path):
        a, b = LeaseManager(tmp_path, "a"), LeaseManager(tmp_path, "b")
        lease = a.try_claim("ff00")
        # b constructs a lease object for the same point; releasing it
        # must not remove a's claim.
        foreign = dataclasses.replace(lease, worker="b")
        assert b.release(foreign) is False
        assert read_lease(lease_path(tmp_path, "ff00")).worker == "a"

    def test_renew_refreshes_heartbeat(self, tmp_path):
        a = LeaseManager(tmp_path, "a")
        lease = a.try_claim("ff00")
        renewed = a.renew(lease)
        assert renewed is not None
        assert renewed.heartbeat >= lease.heartbeat
        assert renewed.attempt == lease.attempt

    def test_renew_bumps_attempt_in_place(self, tmp_path):
        a = LeaseManager(tmp_path, "a")
        lease = a.try_claim("ff00")
        bumped = a.renew(lease, attempt=2)
        assert bumped.attempt == 2
        assert read_lease(lease_path(tmp_path, "ff00")).attempt == 2

    def test_renew_after_loss_returns_none(self, tmp_path):
        a = LeaseManager(tmp_path, "a")
        lease = a.try_claim("ff00")
        os.unlink(lease_path(tmp_path, "ff00"))
        assert a.renew(lease) is None

    def test_corrupt_lease_reads_as_none(self, tmp_path):
        path = lease_path(tmp_path, "ff00")
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert read_lease(path) is None

    def test_stale_reclaim_carries_attempt_forward(self, tmp_path):
        a = LeaseManager(tmp_path, "a", ttl=0.05)
        lease = a.try_claim("ff00", label="pt")
        time.sleep(0.1)
        assert lease.stale(0.05)
        b = LeaseManager(tmp_path, "b", ttl=0.05)
        got = b.reclaim(lease)
        assert (got.worker, got.attempt, got.label) == ("b", 2, "pt")
        # The old holder lost: it must not renew over the new claim.
        assert a.renew(lease) is None

    def test_drop_removes_whoever_holds(self, tmp_path):
        a, b = LeaseManager(tmp_path, "a"), LeaseManager(tmp_path, "b")
        a.try_claim("ff00")
        assert b.drop("ff00") is True  # administrative: no ownership check
        assert not lease_path(tmp_path, "ff00").exists()
        assert b.drop("ff00") is False  # already gone

    def test_group_hint_round_trips(self, tmp_path):
        a = LeaseManager(tmp_path, "a")
        a.try_claim("ff00", group="aabbccdd1122")
        on_disk = read_lease(lease_path(tmp_path, "ff00"))
        assert on_disk.group == "aabbccdd1122"
        # Reclaim preserves the group unless overridden.
        stale = dataclasses.replace(on_disk, heartbeat=0.0)
        got = LeaseManager(tmp_path, "b").reclaim(stale)
        assert got.group == "aabbccdd1122"

    def test_worker_stats_via_backend(self, tmp_path):
        a = LeaseManager(tmp_path, "a")
        a.put_worker_stats("a", {"worker": "a", "done": 2})
        assert a.list_worker_stats() == [{"worker": "a", "done": 2}]
        assert a.prune_worker("a") is True
        assert a.list_worker_stats() == []


def _race_claim(store_root, start, results):
    mgr = LeaseManager(store_root, worker_id=f"w{os.getpid()}")
    start.wait()
    got = mgr.try_claim("deadbeef")
    results.put(None if got is None else got.worker)


class TestConcurrentClaim:
    def test_exactly_one_winner_across_processes(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        start, results = ctx.Event(), ctx.Queue()
        procs = [
            ctx.Process(target=_race_claim, args=(str(tmp_path), start, results))
            for _ in range(8)
        ]
        for p in procs:
            p.start()
        start.set()
        winners = [results.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        claimed = [w for w in winners if w is not None]
        assert len(claimed) == 1
        on_disk = read_lease(lease_path(tmp_path, "deadbeef"))
        assert on_disk is not None and on_disk.worker == claimed[0]


# ----------------------------------------------------------------------
# WorkQueue
# ----------------------------------------------------------------------

class TestWorkQueue:
    def test_cached_points_are_resolved_up_front(self, tmp_path):
        specs = grid(3)
        store = ResultStore(tmp_path)
        store.put(specs[0], run_spec(specs[0]))
        queue = WorkQueue(specs, store, worker_id="w")
        assert queue.initial_done == 1
        claim = queue.claim()
        assert claim.spec is specs[1]  # first unresolved, in spec order

    def test_claim_skips_freshly_leased_points(self, tmp_path):
        specs = grid(3)
        store = ResultStore(tmp_path)
        peer = LeaseManager(tmp_path, "peer")
        peer.try_claim(specs[0].fingerprint())
        queue = WorkQueue(specs, store, worker_id="w")
        assert queue.claim().spec is specs[1]

    def test_nothing_claimable_returns_none(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        LeaseManager(tmp_path, "peer").try_claim(specs[0].fingerprint())
        queue = WorkQueue(specs, store, worker_id="w")
        assert queue.claim() is None
        assert not queue.drained()

    def test_record_failure_resolves_and_cleans(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        ckpt = checkpoint_path(store.root, specs[0].fingerprint())
        ckpt.parent.mkdir(parents=True)
        ckpt.write_text("{}")
        queue = WorkQueue(specs, store, worker_id="w")
        queue.record_failure(specs[0], attempts=3, worker="w", error="boom")
        assert queue.drained()
        assert not ckpt.exists(), "dead point's checkpoint must be swept"
        payload = store.get_sidecar(FAILURE_KIND, specs[0])
        assert payload["attempts"] == 3 and "boom" in payload["error"]
        status = queue.status()
        assert (status.failed, status.done) == (1, 0)

    def test_result_beats_failure_record(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        store.put(specs[0], run_spec(specs[0]))
        queue = WorkQueue(specs, store, worker_id="w")
        queue.record_failure(specs[0], attempts=3, worker="w", error="late")
        assert store.get_sidecar(FAILURE_KIND, specs[0]) is None

    def test_budget_exhausted_stale_lease_becomes_failure(self, tmp_path):
        specs = grid(2)
        store = ResultStore(tmp_path)
        dead = LeaseManager(tmp_path, "dead", ttl=0.05)
        dead.try_claim(specs[0].fingerprint(), attempt=2)
        time.sleep(0.12)
        queue = WorkQueue(specs, store, worker_id="w",
                          lease_ttl=0.05, max_attempts=2)
        claim = queue.claim()
        # The poisoned point resolved as failed in passing; the scan
        # handed back the next runnable point instead of wedging.
        assert claim.spec is specs[1]
        assert store.get_sidecar(FAILURE_KIND, specs[0]) is not None
        assert not lease_path(tmp_path, specs[0].fingerprint()).exists()

    def test_stale_lease_under_budget_is_reclaimed(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        dead = LeaseManager(tmp_path, "dead", ttl=0.05)
        dead.try_claim(specs[0].fingerprint())
        time.sleep(0.12)
        queue = WorkQueue(specs, store, worker_id="w",
                          lease_ttl=0.05, max_attempts=3)
        claim = queue.claim()
        assert claim is not None
        assert (claim.lease.worker, claim.lease.attempt) == ("w", 2)


# ----------------------------------------------------------------------
# FabricWorker + drain
# ----------------------------------------------------------------------

class TestFabricWorker:
    def test_single_worker_drain_matches_run_spec(self, tmp_path):
        specs = grid(2)
        ref = [point_doc(run_spec(s)) for s in specs]
        store = ResultStore(tmp_path)
        results, summary = drain(specs, store, worker_id="solo", poll=0.05)
        assert [r.status for r in results] == ["done", "done"]
        assert [point_doc(r.point) for r in results] == ref
        assert (summary.executed, summary.failed) == (2, 0)
        assert summary.status.drained
        assert lease_files(tmp_path) == []

    def test_cached_points_reported_cached(self, tmp_path):
        specs = grid(2)
        store = ResultStore(tmp_path)
        store.put(specs[0], run_spec(specs[0]))
        results, summary = drain(specs, store, worker_id="w", poll=0.05)
        assert [r.status for r in results] == ["cached", "done"]
        assert summary.executed == 1

    def test_lost_renewal_counted_logged_once_and_reported(
        self, tmp_path, capsys
    ):
        specs = grid(1)
        store = ResultStore(tmp_path)
        queue = WorkQueue(specs, store, worker_id="w", lease_ttl=0.3)

        def execute(s):
            # A peer judged us dead and took the lease; the next
            # heartbeat renewal (ttl/3 = 0.1s) finds it gone.
            os.unlink(lease_path(tmp_path, s.fingerprint()))
            time.sleep(0.45)
            return run_spec(s)

        worker = FabricWorker(queue, execute=execute, poll=0.05)
        summary = worker.run()
        assert summary.executed == 1  # the point still completed
        assert summary.renew_failures == 1
        assert "1 lease renewal(s) lost" in summary.render()
        err = capsys.readouterr().err
        assert err.count("lease renewal failed") == 1

    def test_two_workers_split_grid_store_identical(self, tmp_path):
        specs = grid(4)
        single = ResultStore(tmp_path / "single")
        for s in specs:
            single.put(s, run_spec(s))
        shared = ResultStore(tmp_path / "shared")
        summaries = {}

        def work(wid):
            queue = WorkQueue(specs, shared, worker_id=wid, lease_ttl=10.0)
            summaries[wid] = FabricWorker(queue, poll=0.05).run()

        threads = [threading.Thread(target=work, args=(w,)) for w in ("w1", "w2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        # Exactly once per point: fresh leases are exclusive and nothing
        # went stale, so the split covers the grid with no overlap.
        assert summaries["w1"].executed + summaries["w2"].executed == 4
        assert summaries["w1"].completed.isdisjoint(summaries["w2"].completed)
        for s in specs:
            entry = json.loads(shared.path_for(s.fingerprint()).read_text())
            ref = json.loads(single.path_for(s.fingerprint()).read_text())
            assert entry["spec"] == ref["spec"]
            assert entry["point"] == ref["point"]
        assert lease_files(shared.root) == []

    def test_poisoned_point_fails_without_wedging(self, tmp_path):
        specs = grid(2)
        boom = specs[0].fingerprint()
        calls = []

        def execute(s):
            calls.append(s.fingerprint())
            if s.fingerprint() == boom:
                raise RuntimeError("boom")
            return run_spec(s)

        store = ResultStore(tmp_path)
        results, summary = drain(
            specs, store, worker_id="w", max_attempts=2,
            execute=execute, poll=0.05,
        )
        assert results[0].status == "failed"
        assert results[0].attempts == 2
        assert "boom" in results[0].error
        assert results[1].status == "done"
        assert calls.count(boom) == 2, "in-place retry burns the budget"
        assert (summary.executed, summary.failed) == (1, 1)
        assert lease_files(tmp_path) == []
        with pytest.raises(RuntimeError, match="boom"):
            results[0].require()

    def test_flaky_point_retried_in_place(self, tmp_path):
        specs = grid(1)
        attempts = []

        def execute(s):
            attempts.append(s)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return run_spec(s)

        store = ResultStore(tmp_path)
        results, summary = drain(
            specs, store, worker_id="w", max_attempts=3,
            execute=execute, poll=0.05,
        )
        assert results[0].status == "done"
        assert len(attempts) == 2
        assert store.get_sidecar(FAILURE_KIND, specs[0]) is None

    def test_progress_carries_fleet_fields(self, tmp_path):
        specs = grid(2)
        events = []
        drain(specs, ResultStore(tmp_path), worker_id="w",
              observer=events.append, poll=0.05)
        assert len(events) == 2
        last = events[-1]
        assert isinstance(last, SweepProgress)
        assert last.worker == "w"
        assert last.fleet_workers >= 1
        assert (last.total, last.resolved) == (2, 2)
        assert "worker(s)" in last.render()

    def test_max_points_stops_early(self, tmp_path):
        specs = grid(3)
        store = ResultStore(tmp_path)
        queue = WorkQueue(specs, store, worker_id="w")
        summary = FabricWorker(queue, poll=0.05, max_points=1).run()
        assert summary.executed == 1
        assert not summary.status.drained
        assert lease_files(tmp_path) == []


# ----------------------------------------------------------------------
# SIGKILL recovery: reclaim + checkpoint resume, bit-identical result
# ----------------------------------------------------------------------

_VICTIM = textwrap.dedent("""
    import json, os, signal, sys
    sys.path.insert(0, sys.argv[3])
    from repro.analysis.store import ResultStore
    from repro.engine.runspec import RunSpec
    from repro.fabric import FabricWorker, WorkQueue
    from repro.snapshot import snapshot as snapmod

    spec = RunSpec.from_jsonable(json.loads(open(sys.argv[2]).read()))
    original = snapmod.Snapshot.save

    def save_and_die(self, path):
        original(self, path)
        os.kill(os.getpid(), signal.SIGKILL)

    snapmod.Snapshot.save = save_and_die
    store = ResultStore(sys.argv[1])
    queue = WorkQueue([spec], store, worker_id="victim", lease_ttl=30.0)
    FabricWorker(queue, snapshot_every=64, poll=0.05).run()
""")


class TestSigkillRecovery:
    def test_peer_resumes_killed_point_from_checkpoint(self, tmp_path):
        s = spec(load=0.3, seed=7)
        ref = point_doc(run_spec(s))
        store = ResultStore(tmp_path / "store")
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(s.to_jsonable()))
        script = tmp_path / "victim.py"
        script.write_text(_VICTIM)
        proc = subprocess.run(
            [sys.executable, str(script), str(store.root), str(spec_file), SRC],
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        # The victim died holding its lease, one checkpoint in.
        lease = read_lease(lease_path(store.root, s.fingerprint()))
        assert lease is not None and lease.worker == "victim"
        snap = load_checkpoint(store.root, s)
        assert snap is not None and snap.cycle == 64
        # A rescuer with a short ttl sees the lease as stale, reclaims
        # it (attempt 2), and resumes from the victim's checkpoint.
        time.sleep(0.15)
        queue = WorkQueue([s], store, worker_id="rescuer", lease_ttl=0.1)
        summary = FabricWorker(queue, snapshot_every=64, poll=0.05).run()
        assert (summary.executed, summary.reclaimed, summary.failed) == (1, 1, 0)
        assert point_doc(store.get(s)) == ref, "resume must be bit-identical"
        assert lease_files(store.root) == []
        assert not checkpoint_path(store.root, s.fingerprint()).exists()


# ----------------------------------------------------------------------
# SIGTERM graceful preemption: checkpoint + immediate lease release
# ----------------------------------------------------------------------

_PREEMPTEE = textwrap.dedent("""
    import json, os, signal, sys
    sys.path.insert(0, sys.argv[3])
    from repro.analysis.store import ResultStore
    from repro.engine.runspec import RunSpec
    from repro.fabric import FabricWorker, WorkQueue
    from repro.snapshot import snapshot as snapmod

    spec = RunSpec.from_jsonable(json.loads(open(sys.argv[2]).read()))
    original = snapmod.Snapshot.save

    def save_then_sigterm(self, path):
        original(self, path)
        snapmod.Snapshot.save = original  # the preemption flush saves too
        os.kill(os.getpid(), signal.SIGTERM)

    snapmod.Snapshot.save = save_then_sigterm
    store = ResultStore(sys.argv[1])
    queue = WorkQueue([spec], store, worker_id="preemptee", lease_ttl=30.0)
    worker = FabricWorker(queue, snapshot_every=64, poll=0.05)
    summary = worker.run()
    print(json.dumps({"executed": summary.executed,
                      "released": worker.released}))
""")


class TestSigtermPreemption:
    def test_real_signal_checkpoints_and_releases_the_lease(self, tmp_path):
        """A real SIGTERM mid-point: the worker's handler requests
        graceful preemption, the point checkpoints and hands its lease
        back immediately (no TTL wait), and the worker exits cleanly —
        then a rescuer resumes from the checkpoint bit-identically."""
        s = spec(load=0.3, seed=7)
        ref = point_doc(run_spec(s))
        store = ResultStore(tmp_path / "store")
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(s.to_jsonable()))
        script = tmp_path / "preemptee.py"
        script.write_text(_PREEMPTEE)
        proc = subprocess.run(
            [sys.executable, str(script), str(store.root), str(spec_file), SRC],
            timeout=120, capture_output=True, text=True,
        )
        # Graceful: normal exit (not killed by the signal), nothing run
        # to completion, one point handed back.
        assert proc.returncode == 0, proc.stderr
        out = json.loads(proc.stdout.strip().splitlines()[-1])
        assert out == {"executed": 0, "released": 1}
        # The lease was released immediately — not left to expire.
        assert read_lease(lease_path(store.root, s.fingerprint())) is None
        snap = load_checkpoint(store.root, s)
        assert snap is not None and snap.cycle >= 64
        # A rescuer picks the point up cold and finishes from the
        # checkpoint; attempt count was untouched, so nothing reclaims.
        queue = WorkQueue([s], store, worker_id="rescuer", lease_ttl=30.0)
        summary = FabricWorker(queue, snapshot_every=64, poll=0.05).run()
        assert (summary.executed, summary.reclaimed, summary.failed) == (1, 0, 0)
        assert point_doc(store.get(s)) == ref, "resume must be bit-identical"
        assert lease_files(store.root) == []
        assert not checkpoint_path(store.root, s.fingerprint()).exists()


# ----------------------------------------------------------------------
# Fleet observability + reap
# ----------------------------------------------------------------------

class TestFleetStatus:
    def test_scan_counts(self, tmp_path):
        specs = grid(3)
        store = ResultStore(tmp_path)
        store.put(specs[0], run_spec(specs[0]))
        LeaseManager(tmp_path, "peer").try_claim(specs[1].fingerprint())
        status = fleet_status(specs, store, lease_ttl=60.0)
        assert (status.total, status.done, status.leased) == (3, 1, 1)
        assert status.pending == 2
        assert not status.drained
        # No worker stats files yet: fleet rate (and ETA) are unknown.
        assert status.fleet_rate != status.fleet_rate

    def test_foreign_leases_ignored(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        LeaseManager(tmp_path, "peer").try_claim("ff" * 32)  # another grid's point
        status = fleet_status(specs, store, lease_ttl=60.0)
        assert status.leased == 0


class TestReap:
    def test_reap_drops_stale_and_fails_exhausted(self, tmp_path):
        specs = grid(2)
        store = ResultStore(tmp_path)
        dead = LeaseManager(tmp_path, "dead", ttl=0.05)
        dead.try_claim(specs[0].fingerprint(), attempt=1)
        dead.try_claim(specs[1].fingerprint(), attempt=3)
        time.sleep(0.12)
        report = reap(specs, store, lease_ttl=0.05, max_attempts=3)
        assert [le.fingerprint for le in report.dropped_leases] == [
            specs[0].fingerprint()
        ]
        assert report.failed_points == [specs[1].fingerprint()]
        assert lease_files(tmp_path) == []
        assert store.get_sidecar(FAILURE_KIND, specs[0]) is None
        assert store.get_sidecar(FAILURE_KIND, specs[1]) is not None

    def test_reap_leaves_fresh_leases_alone(self, tmp_path):
        specs = grid(1)
        store = ResultStore(tmp_path)
        LeaseManager(tmp_path, "live").try_claim(specs[0].fingerprint())
        report = reap(specs, store, lease_ttl=60.0)
        assert report.dropped_leases == [] and report.failed_points == []
        assert len(lease_files(tmp_path)) == 1


# ----------------------------------------------------------------------
# SweepProgress fleet fields
# ----------------------------------------------------------------------

class TestSweepProgressFleet:
    def _progress(self, **kw):
        base = dict(total=10, done=4, cached=0, failed=0, elapsed=2.0,
                    last_label="pt", last_status="done", last_wall_time=0.5)
        base.update(kw)
        return SweepProgress(**base)

    def test_fleet_rate_drives_eta(self):
        p = self._progress(worker="w1", fleet_workers=3, fleet_rate=4.0)
        assert p.eta_seconds == pytest.approx(6 / 4.0)
        assert "3 worker(s)" in p.render()
        assert "4.00 pt/s fleet" in p.render()

    def test_single_host_defaults_unchanged(self):
        p = self._progress()
        assert (p.worker, p.fleet_workers) == ("", 1)
        assert p.eta_seconds == pytest.approx(6 / p.rate)
        assert "worker(s)" not in p.render()
