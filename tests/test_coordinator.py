"""The HTTP coordinator: lease parity, remote store, restart recovery.

The contract under test is mode equivalence: a fleet coordinated
through ``repro fabric serve`` must behave exactly like one sharing a
store directory — same lease semantics (exclusivity, staleness,
attempt budgets), same store contents (fingerprint/byte-identical
entries), same observability — and must additionally survive the
coordinator being SIGKILLed and restarted mid-drain (all state is on
its disk) with workers backing off and resuming on their own.
"""

import dataclasses
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.fabric import FAILURE_KIND, WorkQueue, affinity_group, drain, fleet_status, reap
from repro.fabric.coordinator import (
    CoordinatorError,
    CoordinatorUnreachable,
    CoordinatorClient,
    FabricCoordinator,
    HTTPLeaseManager,
    RemoteStore,
    open_coordinator,
)
from repro.fabric.watch import render_frame, watch

SRC = str(Path(repro.__file__).resolve().parents[1])


def spec(load=0.2, seed=3, routing="min") -> RunSpec:
    return RunSpec(
        SimulationConfig.small(h=2, routing=routing, seed=seed), "UN", load,
        warmup=100, measure=100,
    )


def grid(n=4) -> list[RunSpec]:
    return [spec(load=round(0.1 * (i + 1), 2)) for i in range(n)]


def entries(root) -> dict:
    """fingerprint -> entry with the wall-clock metadata dropped."""
    out = {}
    for path in sorted(Path(root).glob("objects/*/*.json")):
        entry = json.loads(path.read_text())
        entry.pop("created", None)
        entry.pop("wall_time", None)
        out[path.stem] = entry
    return out


@pytest.fixture
def coord(tmp_path):
    """An in-process coordinator serving ``tmp_path / 'coord'``."""
    server = FabricCoordinator(tmp_path / "coord", port=0)
    server.start_background()
    yield server
    server.shutdown()
    server.server_close()


def managers(coord, *workers, ttl=60.0, retry_window=3.0):
    client = CoordinatorClient(coord.url, retry_window=retry_window)
    return [HTTPLeaseManager(client, worker_id=w, ttl=ttl) for w in workers]


# ----------------------------------------------------------------------
# Lease protocol over the socket: parity with the file backend
# ----------------------------------------------------------------------

class TestHTTPLeaseProtocol:
    def test_claim_is_exclusive(self, coord):
        a, b = managers(coord, "a", "b")
        lease = a.try_claim("ff00", label="pt")
        assert (lease.worker, lease.attempt, lease.label) == ("a", 1, "pt")
        assert b.try_claim("ff00") is None
        assert b.try_claim("ff01") is not None

    def test_lease_lands_in_server_store_layout(self, coord):
        (a,) = managers(coord, "a")
        a.try_claim("ff00", label="pt", group="aabbccdd1122")
        # Byte-for-byte the file backend's lease file, on the server disk.
        from repro.fabric import LeaseManager, lease_path, read_lease

        on_disk = read_lease(lease_path(coord.store_root, "ff00"))
        assert on_disk.worker == "a"
        assert on_disk.group == "aabbccdd1122"
        # ...and the file backend over the same root sees it as its own.
        assert LeaseManager(coord.store_root, "a").current("ff00").worker == "a"

    def test_release_frees_the_point(self, coord):
        a, b = managers(coord, "a", "b")
        lease = a.try_claim("ff00")
        assert a.release(lease) is True
        assert b.try_claim("ff00") is not None

    def test_release_refuses_foreign_lease(self, coord):
        a, b = managers(coord, "a", "b")
        lease = a.try_claim("ff00")
        foreign = dataclasses.replace(lease, worker="b")
        assert b.release(foreign) is False
        assert a.current("ff00").worker == "a"

    def test_renew_refreshes_and_loss_returns_none(self, coord):
        a, b = managers(coord, "a", "b")
        lease = a.try_claim("ff00")
        renewed = a.renew(lease)
        assert renewed.heartbeat >= lease.heartbeat
        a.drop("ff00")
        assert a.renew(renewed) is None

    def test_stale_lease_reclaimed_with_attempt_carried(self, coord):
        a, b = managers(coord, "a", "b", ttl=0.1)
        stale = a.try_claim("ff00", label="pt")
        time.sleep(0.25)
        taken = b.reclaim(stale)
        assert taken is not None
        assert (taken.worker, taken.attempt, taken.label) == ("b", 2, "pt")

    def test_fresh_lease_cannot_be_reclaimed_by_skewed_clock(self, coord):
        # A client whose clock says the lease is ancient still cannot
        # steal it: the coordinator re-judges staleness on its own clock.
        a, b = managers(coord, "a", "b", ttl=60.0)
        lease = a.try_claim("ff00")
        skewed = dataclasses.replace(lease, heartbeat=lease.heartbeat - 3600)
        assert b.reclaim(skewed) is None
        assert a.current("ff00").worker == "a"

    def test_leases_map_is_the_full_table(self, coord):
        a, b = managers(coord, "a", "b")
        a.try_claim("ff00")
        b.try_claim("ff01")
        table = a.leases_map()
        assert set(table) == {"ff00", "ff01"}
        assert table["ff01"].worker == "b"

    def test_worker_stats_round_trip(self, coord):
        a, b = managers(coord, "a", "b")
        a.put_worker_stats("a", {"worker": "a", "done": 3})
        b.put_worker_stats("b", {"worker": "b", "done": 1})
        listed = {s["worker"]: s for s in a.list_worker_stats()}
        assert listed["a"]["done"] == 3
        assert a.prune_worker("b") is True
        assert [s["worker"] for s in a.list_worker_stats()] == ["a"]

    def test_unreachable_coordinator_raises_after_window(self, tmp_path):
        client = CoordinatorClient("http://127.0.0.1:9", retry_window=0.3)
        manager = HTTPLeaseManager(client, worker_id="a")
        t0 = time.monotonic()
        with pytest.raises(CoordinatorUnreachable):
            manager.try_claim("ff00")
        assert time.monotonic() - t0 >= 0.3

    def test_protocol_mismatch_is_an_error(self, coord):
        client = CoordinatorClient(coord.url, retry_window=1.0)
        reply = client.call("ping")
        assert reply["ok"] is True
        with pytest.raises(CoordinatorError):
            client.call("no_such_route", {})


# ----------------------------------------------------------------------
# RemoteStore: authoritative reads/writes over the wire, local spool
# ----------------------------------------------------------------------

class TestRemoteStore:
    def test_put_get_round_trip(self, coord, tmp_path):
        store, _ = open_coordinator(coord.url, tmp_path / "spool",
                                    retry_window=3.0)
        s = spec()
        point = run_spec(s)
        store.put(s, point, wall_time=1.5)
        got = store.get(s)
        assert dataclasses.asdict(got) == dataclasses.asdict(point)
        # The entry lives in the coordinator's store, not the spool.
        server_store = ResultStore(coord.store_root)
        assert server_store.has(s.fingerprint())
        assert not (tmp_path / "spool" / "objects").exists()

    def test_resolved_many_states(self, coord, tmp_path):
        store, _ = open_coordinator(coord.url, tmp_path / "spool",
                                    retry_window=3.0)
        done, failed, pending = grid(3)
        store.put(done, run_spec(done))
        store.put_sidecar(FAILURE_KIND, failed, {"error": "x", "attempts": 3})
        resolved = store.resolved_many(
            [s.fingerprint() for s in (done, failed, pending)], FAILURE_KIND
        )
        assert list(resolved.values()) == ["result", "failure", None]
        assert store.has(done.fingerprint())
        assert store.has_sidecar(FAILURE_KIND, failed.fingerprint())

    def test_spooled_sidecars_ship_with_the_result(self, coord, tmp_path):
        spool = tmp_path / "spool"
        store, _ = open_coordinator(coord.url, spool, retry_window=3.0)
        s = spec()
        # The execution layer stages provenance sidecars in the spool
        # through a plain local ResultStore (exactly what
        # _execute_spec_telemetry does)...
        ResultStore(spool).put_sidecar("workloads", s, {"kind": "synthetic"})
        store.put(s, run_spec(s))
        # ...and put ships them: the coordinator's store has both.
        server_store = ResultStore(coord.store_root)
        assert server_store.get_sidecar("workloads", s) == {"kind": "synthetic"}
        assert server_store.get(s) is not None

    def test_failure_sidecar_goes_straight_to_the_coordinator(
        self, coord, tmp_path
    ):
        store, _ = open_coordinator(coord.url, tmp_path / "spool",
                                    retry_window=3.0)
        s = spec()
        store.put_sidecar(FAILURE_KIND, s, {"error": "boom", "attempts": 3})
        assert ResultStore(coord.store_root).get_sidecar(FAILURE_KIND, s) == {
            "error": "boom", "attempts": 3,
        }
        assert store.get_sidecar(FAILURE_KIND, s)["error"] == "boom"


# ----------------------------------------------------------------------
# The fleet over HTTP: queue behavior, identity with file mode
# ----------------------------------------------------------------------

class TestHTTPFleet:
    def test_drain_matches_file_mode_byte_for_byte(self, coord, tmp_path):
        specs = grid(3)
        # Reference: the shared-directory fabric.
        ref_store = ResultStore(tmp_path / "ref")
        drain(specs, ref_store, worker_id="ref", poll=0.05)
        # Same campaign through the coordinator, no shared filesystem.
        store, leases = open_coordinator(
            coord.url, tmp_path / "spool", worker_id="w1",
            lease_ttl=5.0, retry_window=3.0,
        )
        results, summary = drain(specs, store, leases=leases, poll=0.05)
        assert [r.status for r in results] == ["done"] * 3
        assert summary.executed == 3
        assert summary.renew_failures == 0
        assert entries(coord.store_root) == entries(tmp_path / "ref")
        assert not list((coord.store_root / "leases").glob("*.json"))

    def test_claim_records_affinity_group(self, coord, tmp_path):
        specs = grid(2)
        store, leases = open_coordinator(
            coord.url, tmp_path / "spool", worker_id="w1", retry_window=3.0,
        )
        queue = WorkQueue(specs, store, leases=leases)
        claim = queue.claim()
        assert claim.lease.group == affinity_group(claim.spec)

    def test_fleet_status_and_watch_over_http(self, coord, tmp_path):
        specs = grid(2)
        store, leases = open_coordinator(
            coord.url, tmp_path / "spool", worker_id="w1", retry_window=3.0,
        )
        queue = WorkQueue(specs, store, leases=leases)
        claim = queue.claim()
        status = fleet_status(specs, store, lease_ttl=60.0, leases=leases)
        assert status.leased == 1
        frame = render_frame("t", status)
        assert claim.lease.fingerprint[:12] in frame
        queue.leases.release(claim.lease)
        # drain the rest so watch() terminates on its own
        drain(specs, store, leases=leases, poll=0.05)
        import io

        out = io.StringIO()
        last = watch("t", specs, store, leases=leases, interval=0.05, out=out)
        assert last.drained
        assert "drained" in out.getvalue()

    def test_reap_over_http(self, coord, tmp_path):
        specs = grid(1)
        store, leases = open_coordinator(
            coord.url, tmp_path / "spool", worker_id="w1",
            lease_ttl=0.1, retry_window=3.0,
        )
        queue = WorkQueue(specs, store, leases=leases, max_attempts=3)
        queue.claim()
        leases.put_worker_stats("w1", {"worker": "w1", "heartbeat": 0.0})
        time.sleep(0.25)
        report = reap(specs, store, lease_ttl=0.1, leases=leases)
        assert len(report.dropped_leases) == 1
        assert report.pruned_workers == ["w1"]
        assert not list((coord.store_root / "leases").glob("*.json"))


# ----------------------------------------------------------------------
# Claim affinity (backend-independent semantics)
# ----------------------------------------------------------------------

class TestClaimAffinity:
    def test_group_ignores_load_and_seed(self):
        assert affinity_group(spec(load=0.1, seed=1)) == \
            affinity_group(spec(load=0.7, seed=9))

    def test_group_distinguishes_configs(self):
        assert affinity_group(spec(routing="min")) != \
            affinity_group(spec(routing="ofar"))

    def test_preferred_groups_scanned_first(self, tmp_path):
        # Two groups interleaved in declaration order; a worker that has
        # executed in the second group claims its points first.
        warm = [spec(routing="ofar", load=round(0.1 * i, 2)) for i in (1, 2)]
        cold = [spec(routing="min", load=round(0.1 * i, 2)) for i in (1, 2)]
        specs = [cold[0], warm[0], cold[1], warm[1]]
        queue = WorkQueue(specs, ResultStore(tmp_path), worker_id="w")
        queue.prefer_groups.add(affinity_group(warm[0]))
        first = queue.claim()
        second = queue.claim()
        assert {first.spec.fingerprint(), second.spec.fingerprint()} == \
            {s.fingerprint() for s in warm}
        # Unpreferred points still claimed afterwards, declaration order.
        third = queue.claim()
        assert third.spec.fingerprint() == cold[0].fingerprint()

    def test_worker_learns_groups_it_executes(self, tmp_path):
        specs = grid(2)
        store = ResultStore(tmp_path)
        _, summary = drain(specs, store, worker_id="w", poll=0.05)
        assert summary.executed == 2
        # drain built its own queue; re-check via a fresh queue claim on
        # an undrained grid instead: execute one point, group learned.
        from repro.fabric import FabricWorker

        more = [spec(routing="ofar")]
        queue = WorkQueue(more, ResultStore(tmp_path / "b"), worker_id="w")
        worker = FabricWorker(queue, poll=0.05, max_points=1)
        worker.run()
        assert affinity_group(more[0]) in queue.prefer_groups


# ----------------------------------------------------------------------
# Coordinator robustness: SIGKILL + restart mid-drain
# ----------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_coordinator(store: Path, port: int) -> subprocess.Popen:
    code = (
        "from repro.fabric.coordinator import serve; "
        f"serve({str(store)!r}, port={port})"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_ping(url: str, timeout: float = 10.0) -> None:
    CoordinatorClient(url, timeout=2.0, retry_window=timeout).ping()


class TestCoordinatorRestart:
    def test_workers_ride_out_a_coordinator_sigkill(self, tmp_path):
        specs = grid(5)
        ref_store = ResultStore(tmp_path / "ref")
        drain(specs, ref_store, worker_id="ref", poll=0.05)

        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        coord_store = tmp_path / "coord"
        server = _spawn_coordinator(coord_store, port)
        try:
            _wait_for_ping(url)
            store, leases = open_coordinator(
                url, tmp_path / "spool", worker_id="w1",
                lease_ttl=5.0, retry_window=30.0,
            )

            def execute(s):
                time.sleep(0.2)  # stretch the drain across the outage
                return run_spec(s)

            box = {}

            def worker():
                box["out"] = drain(
                    specs, store, leases=leases, poll=0.1, execute=execute
                )

            thread = threading.Thread(target=worker)
            thread.start()
            # Let at least one result land, then shoot the coordinator.
            deadline = time.monotonic() + 30
            while not entries(coord_store) and time.monotonic() < deadline:
                time.sleep(0.05)
            assert entries(coord_store), "no result landed before the kill"
            server.kill()
            server.wait(timeout=10)
            time.sleep(1.0)  # a real outage, mid-drain
            server = _spawn_coordinator(coord_store, port)
            _wait_for_ping(url)
            thread.join(timeout=120)
            assert not thread.is_alive(), "drain did not finish after restart"

            results, summary = box["out"]
            assert summary.backend_error == ""
            assert [r.status for r in results] == ["done"] * len(specs)
            # Identical store despite the SIGKILL: full state recovered
            # from the coordinator's disk.
            assert entries(coord_store) == entries(tmp_path / "ref")
            assert not list((coord_store / "leases").glob("*.json"))
            assert not list((coord_store / FAILURE_KIND).glob("*/*.json"))
        finally:
            server.kill()
            server.wait(timeout=10)

    def test_worker_falls_out_cleanly_when_coordinator_stays_down(
        self, tmp_path
    ):
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        server = _spawn_coordinator(tmp_path / "coord", port)
        try:
            _wait_for_ping(url)
            store, leases = open_coordinator(
                url, tmp_path / "spool", worker_id="w1",
                lease_ttl=5.0, retry_window=0.5,
            )
        finally:
            server.kill()
            server.wait(timeout=10)
        # Coordinator is gone for good: the drain ends with a summary,
        # not a stack trace.
        results, summary = drain(grid(2), store, leases=leases, poll=0.05)
        assert summary.backend_error != ""
        assert "stopped early" in summary.render()
        assert [r.status for r in results] == ["failed", "failed"]
