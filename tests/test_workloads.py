"""Tests for the multi-job workload description layer.

Covers the pure-data half of :mod:`repro.workloads`: specs and their
JSON round-trips, the four placement policies, rank-space job patterns,
and the composite generator's lifecycle/multiplexing semantics.  The
engine-facing half (attribution, runner, store integration) lives in
``test_workload_run.py``.
"""

import random

import pytest

from repro.topology.dragonfly import Dragonfly
from repro.workloads.composite import CompositeTraffic, job_seed
from repro.workloads.jobpatterns import (
    JobAdversarial,
    JobPermutation,
    JobShift,
    JobStencil,
    JobUniform,
    make_job_pattern,
)
from repro.workloads.placement import place_jobs
from repro.workloads.spec import PLACEMENTS, JobSpec, WorkloadSpec


@pytest.fixture
def topo():
    return Dragonfly(2)  # 9 groups x 4 routers x 2 nodes = 72 nodes


def wl(*jobs, placement="contiguous", seed=0):
    return WorkloadSpec(jobs=tuple(jobs), placement=placement,
                        placement_seed=seed)


class TestJobSpec:
    def test_requires_exactly_one_of_count_or_list(self):
        with pytest.raises(ValueError):
            JobSpec(name="j")  # neither
        with pytest.raises(ValueError):
            JobSpec(name="j", nodes=4, node_list=(0, 1))  # both

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(name="", nodes=2)
        with pytest.raises(ValueError):
            JobSpec(name="j", node_list=(1, 1))
        with pytest.raises(ValueError):
            JobSpec(name="j", nodes=2, load=1.5)
        with pytest.raises(ValueError):
            JobSpec(name="j", nodes=2, traffic="poisson")
        with pytest.raises(ValueError):
            JobSpec(name="j", nodes=2, start=10, stop=10)
        with pytest.raises(ValueError):
            JobSpec(name="j", nodes=2, packets_per_node=0)

    def test_stop_must_exceed_start(self):
        # Regression: a job whose window is empty (stop <= start) would
        # silently never emit; the spec rejects it outright instead.
        with pytest.raises(ValueError, match="stop must be > start"):
            JobSpec(name="j", nodes=2, start=100, stop=100)
        with pytest.raises(ValueError, match="stop must be > start"):
            JobSpec(name="j", nodes=2, start=100, stop=40)
        with pytest.raises(ValueError, match="stop must be > start"):
            JobSpec(name="j", nodes=2, stop=0)  # default start=0
        # the boundary one-cycle window is legal
        assert JobSpec(name="j", nodes=2, start=100, stop=101).stop == 101

    def test_size(self):
        assert JobSpec(name="j", nodes=5).size == 5
        assert JobSpec(name="j", node_list=(3, 1, 4)).size == 3

    def test_node_list_coerced_to_tuple(self):
        assert JobSpec(name="j", node_list=[2, 7]).node_list == (2, 7)

    def test_json_round_trip(self):
        job = JobSpec(name="j", node_list=(3, 1), traffic="burst",
                      pattern="ADV+2", packets_per_node=4, start=5, stop=50)
        assert JobSpec.from_jsonable(job.to_jsonable()) == job

    def test_unknown_keys_rejected(self):
        data = JobSpec(name="j", nodes=2).to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError):
            JobSpec.from_jsonable(data)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(jobs=())
        with pytest.raises(ValueError):
            wl(JobSpec(name="a", nodes=2), JobSpec(name="a", nodes=2))
        with pytest.raises(ValueError):
            wl(JobSpec(name="a", nodes=2), placement="best-fit")

    def test_job_index(self):
        w = wl(JobSpec(name="a", nodes=2), JobSpec(name="b", nodes=2))
        assert w.job_index("b") == 1
        with pytest.raises(KeyError):
            w.job_index("c")

    def test_json_round_trip(self):
        w = wl(JobSpec(name="a", nodes=2), JobSpec(name="b", node_list=(9, 11)),
               placement="round-robin-groups", seed=3)
        assert WorkloadSpec.from_json(w.to_json()) == w


class TestPlacement:
    def two(self, size_a=8, size_b=8, **kw):
        return wl(JobSpec(name="a", nodes=size_a),
                  JobSpec(name="b", nodes=size_b), **kw)

    def test_contiguous_lowest_first(self, topo):
        a, b = place_jobs(topo, self.two(placement="contiguous"))
        assert a == tuple(range(8))
        assert b == tuple(range(8, 16))

    def test_random_nodes_deterministic_and_disjoint(self, topo):
        w = self.two(placement="random-nodes", seed=1)
        a1, b1 = place_jobs(topo, w)
        a2, b2 = place_jobs(topo, w)
        assert (a1, b1) == (a2, b2)  # same seed, same placement
        assert not set(a1) & set(b1)
        assert all(0 <= n < topo.num_nodes for n in a1 + b1)

    def test_round_robin_spreads_over_groups(self, topo):
        w = wl(JobSpec(name="a", nodes=topo.num_groups),
               placement="round-robin-groups")
        (a,) = place_jobs(topo, w)
        assert sorted(topo.node_group(n) for n in a) == list(range(9))

    def test_group_exclusive_never_shares_groups(self, topo):
        # 10 nodes need 2 whole groups (8 nodes each); the second job
        # must start in group 2 even though groups 0-1 have free nodes.
        w = self.two(size_a=10, size_b=4, placement="group-exclusive")
        a, b = place_jobs(topo, w)
        assert {topo.node_group(n) for n in a} == {0, 1}
        assert {topo.node_group(n) for n in b} == {2}

    def test_explicit_pins_respected(self, topo):
        w = wl(JobSpec(name="pinned", node_list=(0, 1, 2)),
               JobSpec(name="placed", nodes=3), placement="contiguous")
        pinned, placed = place_jobs(topo, w)
        assert pinned == (0, 1, 2)
        assert placed == (3, 4, 5)  # policy skips claimed nodes

    def test_pin_out_of_range_rejected(self, topo):
        w = wl(JobSpec(name="p", node_list=(topo.num_nodes,)))
        with pytest.raises(ValueError):
            place_jobs(topo, w)

    def test_overlapping_pins_rejected(self, topo):
        w = wl(JobSpec(name="p", node_list=(5,)),
               JobSpec(name="q", node_list=(5, 6)))
        with pytest.raises(ValueError):
            place_jobs(topo, w)

    def test_overcommit_rejected(self, topo):
        w = wl(JobSpec(name="big", nodes=topo.num_nodes + 1))
        with pytest.raises(ValueError):
            place_jobs(topo, w)

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_all_policies_disjoint_and_sorted(self, topo, placement):
        w = wl(JobSpec(name="a", nodes=17), JobSpec(name="b", nodes=23),
               JobSpec(name="c", nodes=9), placement=placement, seed=4)
        placed = place_jobs(topo, w)
        seen = set()
        for nodes in placed:
            assert list(nodes) == sorted(nodes)
            assert not set(nodes) & seen
            seen.update(nodes)


class TestJobPatterns:
    def test_uniform_never_self_and_covers(self):
        p = JobUniform(8, random.Random(1))
        seen = set()
        for _ in range(2000):
            d = p.dest(3)
            assert d != 3
            seen.add(d)
        assert seen == set(range(8)) - {3}

    def test_shift_wraps(self):
        p = JobShift(10, random.Random(1), 3)
        assert p.dest(9) == 2
        with pytest.raises(ValueError):
            JobShift(10, random.Random(1), 10)  # identity map

    def test_adversarial_targets_offset_group(self, topo):
        # One node in each of groups 0..3: ranks bucket 1:1 to groups.
        nodes = tuple(topo.group_nodes(g)[0] for g in range(4))
        p = JobAdversarial(4, random.Random(1), 1, topo, nodes)
        for src in range(4):
            assert p.dest(src) == (src + 1) % 4

    def test_adversarial_needs_two_groups(self, topo):
        nodes = tuple(topo.group_nodes(0)[:4])
        with pytest.raises(ValueError):
            JobAdversarial(4, random.Random(1), 1, topo, nodes)

    def test_permutation_is_derangement(self):
        p = JobPermutation(12, random.Random(5))
        dests = [p.dest(i) for i in range(12)]
        assert sorted(dests) == list(range(12))
        assert all(d != i for i, d in enumerate(dests))

    def test_stencil_never_self(self):
        p = JobStencil(12, random.Random(5))
        for src in range(12):
            for _ in range(40):
                assert p.dest(src) != src

    def test_make_job_pattern_parses(self, topo):
        nodes = tuple(range(8))
        assert make_job_pattern(topo, random.Random(1), "UN", nodes).name == "UN"
        assert make_job_pattern(
            topo, random.Random(1), "SHIFT+2", nodes
        ).name == "SHIFT+2"
        with pytest.raises(ValueError):
            make_job_pattern(topo, random.Random(1), "ZIPF", nodes)

    def test_patterns_need_two_ranks(self):
        with pytest.raises(ValueError):
            JobUniform(1, random.Random(1))


class TestCompositeTraffic:
    def composite(self, topo, *jobs, placement="contiguous", seed=11):
        return CompositeTraffic(topo, wl(*jobs, placement=placement),
                                packet_size=4, seed=seed)

    def test_sources_stay_inside_each_jobs_nodes(self, topo):
        gen = self.composite(
            topo,
            JobSpec(name="a", nodes=8, load=0.5),
            JobSpec(name="b", nodes=8, load=0.5),
        )
        owner = {n: j.spec.name for j in gen.jobs for n in j.nodes}
        for cycle in range(50):
            for src, dst, job in gen.packets_for_cycle(cycle):
                name = gen.jobs[job].spec.name
                assert owner[src] == name
                assert owner[dst] == name

    def test_lifecycle_gates_emission(self, topo):
        gen = self.composite(
            topo, JobSpec(name="late", nodes=8, load=1.0, start=10, stop=20)
        )
        assert gen.packets_for_cycle(9) == []
        assert gen.packets_for_cycle(20) == []
        assert any(gen.packets_for_cycle(c) for c in range(10, 20))

    def test_job_local_time(self, topo):
        """Delaying a job shifts its stream instead of changing it."""
        now = self.composite(topo, JobSpec(name="j", nodes=8, load=0.3))
        late = self.composite(topo, JobSpec(name="j", nodes=8, load=0.3,
                                            start=100))
        for cycle in range(30):
            assert now.packets_for_cycle(cycle) == late.packets_for_cycle(
                cycle + 100
            )

    def test_independent_seeds(self, topo):
        """A neighbour's existence never changes a job's own stream."""
        alone = self.composite(topo, JobSpec(name="a", nodes=8, load=0.3))
        paired = self.composite(
            topo,
            JobSpec(name="a", nodes=8, load=0.3),
            JobSpec(name="b", nodes=8, load=0.9),
        )
        for cycle in range(30):
            mine = [t for t in paired.packets_for_cycle(cycle) if t[2] == 0]
            assert [(s, d, 0) for s, d, _ in alone.packets_for_cycle(cycle)] == mine

    def test_finished_burst_and_stop(self, topo):
        gen = self.composite(
            topo,
            JobSpec(name="burst", nodes=4, traffic="burst",
                    packets_per_node=2),
            JobSpec(name="windowed", nodes=4, load=0.5, stop=100),
        )
        assert not gen.finished(0)
        gen.packets_for_cycle(0)  # burst backlog handed off
        assert not gen.finished(50)  # windowed job still live
        assert gen.finished(100)  # both retired -> drain loops terminate

    def test_stopped_burst_counts_as_finished(self, topo):
        """A burst stopped before it ever emitted must not wedge drains."""
        gen = self.composite(
            topo,
            JobSpec(name="never", nodes=4, traffic="burst",
                    packets_per_node=2, start=50, stop=60),
        )
        assert gen.finished(60)

    def test_events_sorted(self, topo):
        gen = self.composite(
            topo,
            JobSpec(name="a", nodes=4, load=0.1, start=30, stop=90),
            JobSpec(name="b", nodes=4, load=0.1),
        )
        assert gen.events() == [
            (0, "start", "b"), (30, "start", "a"), (90, "stop", "a")
        ]

    def test_trace_replays_in_rank_space_and_job_local_time(self, topo):
        # (cycle, src, dst) in rank space; the composite maps ranks to
        # the placed nodes and shifts cycles by the job's start.
        events = ((0, 0, 1), (0, 2, 0), (5, 1, 2))
        gen = self.composite(
            topo,
            JobSpec(name="t", node_list=(10, 30, 50), traffic="trace",
                    trace=events, start=100),
        )
        assert gen.packets_for_cycle(0) == []
        nodes = gen.jobs[0].nodes
        assert gen.packets_for_cycle(100) == [
            (nodes[0], nodes[1], 0), (nodes[2], nodes[0], 0)
        ]
        assert gen.packets_for_cycle(105) == [(nodes[1], nodes[2], 0)]
        assert not gen.finished(104)  # last event still pending
        gen.packets_for_cycle(105)
        assert gen.finished(106)  # trace exhausted -> drains terminate

    def test_trace_validation(self):
        with pytest.raises(ValueError, match="required iff"):
            JobSpec(name="t", nodes=2, traffic="trace")  # no events
        with pytest.raises(ValueError, match="sorted"):
            JobSpec(name="t", nodes=2, traffic="trace",
                    trace=((5, 0, 1), (2, 1, 0)))
        with pytest.raises(ValueError, match="ranks"):
            JobSpec(name="t", nodes=2, traffic="trace", trace=((0, 0, 2),))
        with pytest.raises(ValueError, match="src == dst"):
            JobSpec(name="t", nodes=2, traffic="trace", trace=((0, 1, 1),))

    def test_job_seed_stable_across_processes(self):
        # crc32 is deterministic (unlike hash()); pin one value so an
        # accidental swap to a randomized hash shows up as a failure.
        assert job_seed(7, "bully") == (7 << 16) ^ 0xD86D5CE9
