"""Unit tests for the dragonfly topology and the palmtree arrangement."""

import pytest

from repro.topology.dragonfly import Dragonfly, PortKind


class TestParameters:
    def test_balanced_relations(self):
        for h in (1, 2, 3, 6):
            topo = Dragonfly(h)
            assert topo.p == h
            assert topo.a == 2 * h
            assert topo.num_groups == 2 * h * h + 1
            assert topo.num_routers == topo.num_groups * topo.a
            assert topo.num_nodes == topo.num_routers * topo.p

    def test_paper_sizes_h6(self):
        """§V: h=6 gives 5,256 nodes, 876 routers, 73 groups, 23 ports."""
        topo = Dragonfly(6)
        assert topo.num_groups == 73
        assert topo.num_routers == 876
        assert topo.num_nodes == 5256
        assert topo.ports_per_router == 23
        assert topo.num_global_links == 2628
        assert topo.num_local_links == 73 * 66  # a(a-1)/2 = 66 per group

    def test_ports_per_router_formula(self):
        """Paper §I: total ports per router is 4h - 1."""
        for h in (1, 2, 3, 6, 16):
            assert Dragonfly(h).ports_per_router == 4 * h - 1

    def test_h16_scales_beyond_256k_nodes(self):
        assert Dragonfly(16).num_nodes > 256_000

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            Dragonfly(0)

    def test_truncated_network_rejected(self):
        with pytest.raises(ValueError):
            Dragonfly(2, num_groups=5)

    def test_explicit_max_groups_accepted(self):
        assert Dragonfly(2, num_groups=9).num_groups == 9


class TestIdentity:
    def test_router_group_index_roundtrip(self):
        topo = Dragonfly(2)
        for rid in topo.routers():
            g, r = topo.router_group(rid), topo.router_index(rid)
            assert topo.router_id(g, r) == rid

    def test_node_maps(self):
        topo = Dragonfly(3)
        for node in (0, 5, topo.num_nodes - 1):
            rid = topo.node_router(node)
            assert node in topo.router_nodes(rid)
            assert topo.node_group(node) == topo.router_group(rid)
            assert 0 <= topo.node_port(node) < topo.p

    def test_group_nodes_partition(self):
        topo = Dragonfly(2)
        seen = []
        for g in range(topo.num_groups):
            seen.extend(topo.group_nodes(g))
        assert seen == list(topo.nodes())

    def test_group_routers_partition(self):
        topo = Dragonfly(2)
        seen = []
        for g in range(topo.num_groups):
            seen.extend(topo.group_routers(g))
        assert seen == list(topo.routers())


class TestPortLayout:
    def test_port_kinds(self):
        topo = Dragonfly(2)  # p=2, local=3, global=2 -> ports 0..6
        kinds = [topo.port_kind(p) for p in range(topo.ports_per_router)]
        assert kinds == [
            PortKind.NODE,
            PortKind.NODE,
            PortKind.LOCAL,
            PortKind.LOCAL,
            PortKind.LOCAL,
            PortKind.GLOBAL,
            PortKind.GLOBAL,
        ]
        assert topo.port_kind(topo.ring_port) == PortKind.RING

    def test_port_kind_out_of_range(self):
        topo = Dragonfly(2)
        with pytest.raises(ValueError):
            topo.port_kind(topo.ring_port + 1)
        with pytest.raises(ValueError):
            topo.port_kind(-1)

    def test_local_port_peer_roundtrip(self):
        topo = Dragonfly(3)
        for r in range(topo.a):
            for peer in range(topo.a):
                if peer == r:
                    continue
                port = topo.local_port(r, peer)
                assert topo.local_peer(r, port) == peer

    def test_local_port_rejects_self(self):
        with pytest.raises(ValueError):
            Dragonfly(2).local_port(1, 1)

    def test_local_ports_are_distinct(self):
        topo = Dragonfly(3)
        for r in range(topo.a):
            ports = {topo.local_port(r, p) for p in range(topo.a) if p != r}
            assert len(ports) == topo.a - 1

    def test_global_slot_roundtrip(self):
        topo = Dragonfly(3)
        for k in range(topo.h):
            assert topo.global_slot(topo.global_port(k)) == k

    def test_global_port_bad_slot(self):
        with pytest.raises(ValueError):
            Dragonfly(2).global_port(2)


class TestPalmtree:
    def test_every_group_pair_has_one_link(self):
        topo = Dragonfly(2)
        pairs = set()
        for g in range(topo.num_groups):
            for r in range(topo.a):
                for k in range(topo.h):
                    ep = topo.global_link_endpoint(g, r, k)
                    assert ep.group != g
                    pairs.add((min(g, ep.group), max(g, ep.group)))
        expected = topo.num_groups * (topo.num_groups - 1) // 2
        assert len(pairs) == expected

    def test_endpoint_symmetry(self):
        topo = Dragonfly(3)
        for g in range(topo.num_groups):
            for r in range(topo.a):
                for k in range(topo.h):
                    ep = topo.global_link_endpoint(g, r, k)
                    back = topo.global_link_endpoint(ep.group, ep.router, ep.port)
                    assert (back.group, back.router, back.port) == (g, r, k)

    def test_group_route_matches_endpoint(self):
        topo = Dragonfly(2)
        for g in range(topo.num_groups):
            for dst in range(topo.num_groups):
                if g == dst:
                    continue
                r, k = topo.group_route(g, dst)
                assert topo.global_link_endpoint(g, r, k).group == dst

    def test_group_route_same_group_rejected(self):
        with pytest.raises(ValueError):
            Dragonfly(2).group_route(3, 3)

    def test_consecutive_offsets_consecutive_ports(self):
        """The palmtree wiring is consecutive: offsets d and d+1 sit on
        adjacent (router, slot) positions — the Fig. 2a prerequisite."""
        topo = Dragonfly(3)
        for d in range(1, 2 * topo.h * topo.h):
            r1, k1 = (d - 1) // topo.h, (d - 1) % topo.h
            r2, k2 = d // topo.h, d % topo.h
            assert (r2, k2) in ((r1, k1 + 1), (r1 + 1, 0))

    def test_global_links_iterator_counts(self):
        topo = Dragonfly(2)
        links = list(topo.global_links())
        assert len(links) == topo.num_global_links
        seen = set()
        for ra, pa, rb, pb in links:
            assert topo.port_kind(pa) is PortKind.GLOBAL
            assert topo.port_kind(pb) is PortKind.GLOBAL
            key = frozenset(((ra, pa), (rb, pb)))
            assert key not in seen
            seen.add(key)


class TestNeighbor:
    def test_local_neighbor_symmetric(self):
        topo = Dragonfly(2)
        for rid in topo.routers():
            r = topo.router_index(rid)
            for j in range(topo.local_ports):
                port = topo.node_ports + j
                peer, peer_port = topo.neighbor(rid, port)
                back, back_port = topo.neighbor(peer, peer_port)
                assert (back, back_port) == (rid, port)
                assert topo.router_group(peer) == topo.router_group(rid)
                assert peer != rid

    def test_global_neighbor_symmetric(self):
        topo = Dragonfly(2)
        for rid in topo.routers():
            for k in range(topo.h):
                port = topo.global_port(k)
                peer, peer_port = topo.neighbor(rid, port)
                back, back_port = topo.neighbor(peer, peer_port)
                assert (back, back_port) == (rid, port)
                assert topo.router_group(peer) != topo.router_group(rid)

    def test_node_port_has_no_neighbor(self):
        with pytest.raises(ValueError):
            Dragonfly(2).neighbor(0, 0)


class TestMinimalRouting:
    def test_diameter_three(self):
        """Any minimal route uses at most 3 router-to-router hops."""
        topo = Dragonfly(2)
        nodes = list(topo.nodes())
        for src in nodes[:: max(1, len(nodes) // 16)]:
            for dst in nodes[:: max(1, len(nodes) // 16)]:
                if src == dst:
                    continue
                assert topo.min_distance(src, dst) <= 3

    def test_route_reaches_destination(self):
        topo = Dragonfly(3)
        cases = [(0, topo.num_nodes - 1), (5, 6), (10, 200), (333, 1)]
        for src, dst in cases:
            route = topo.min_route(src, dst)
            last_router, last_port = route[-1]
            assert topo.port_kind(last_port) is PortKind.NODE
            assert last_router == topo.node_router(dst)
            assert last_port == topo.node_port(dst)

    def test_same_router_route(self):
        topo = Dragonfly(2)
        route = topo.min_route(0, 1)  # both on router 0
        assert len(route) == 1
        assert route[0] == (0, 1)

    def test_same_group_route_single_local_hop(self):
        topo = Dragonfly(2)
        # node 0 on router 0; node on router 1, same group
        dst = topo.p * 1
        route = topo.min_route(0, dst)
        assert len(route) == 2
        assert topo.port_kind(route[0][1]) is PortKind.LOCAL

    def test_intergroup_route_shape(self):
        """Inter-group routes are (l) g (l) then ejection."""
        topo = Dragonfly(3)
        for src, dst in ((0, topo.num_nodes - 1), (7, 500)):
            route = topo.min_route(src, dst)
            kinds = [topo.port_kind(p) for _, p in route[:-1]]
            assert kinds.count(PortKind.GLOBAL) == 1
            assert kinds.count(PortKind.LOCAL) <= 2

    def test_min_output_port_to_group(self):
        topo = Dragonfly(2)
        for rid in (0, 7, 20):
            g = topo.router_group(rid)
            for dst_g in range(topo.num_groups):
                if dst_g == g:
                    with pytest.raises(ValueError):
                        topo.min_output_port_to_group(rid, dst_g)
                    continue
                port = topo.min_output_port_to_group(rid, dst_g)
                kind = topo.port_kind(port)
                if kind is PortKind.GLOBAL:
                    peer, _ = topo.neighbor(rid, port)
                    assert topo.router_group(peer) == dst_g
                else:
                    assert kind is PortKind.LOCAL
                    peer, _ = topo.neighbor(rid, port)
                    # The peer owns the direct global link.
                    r, k = topo.group_route(g, dst_g)
                    assert topo.router_index(peer) == r

    def test_min_route_rejects_identical_nodes(self):
        with pytest.raises(ValueError):
            Dragonfly(2).min_route(4, 4)
