"""Tests for trace record/replay workloads."""

import random

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import Dragonfly
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import UniformPattern
from repro.traffic.trace import (
    TraceEvent,
    TraceRecorder,
    TraceTraffic,
    load_trace,
    parse_trace,
    save_trace,
    synthesize_phases,
)


@pytest.fixture
def topo():
    return Dragonfly(2)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        events = [TraceEvent(0, 1, 2), TraceEvent(5, 3, 4)]
        path = str(tmp_path / "t.csv")
        save_trace(events, path)
        assert load_trace(path) == events

    def test_parse_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            parse_trace(["cycle,src,dst", "5,0,1", "2,0,1"])

    def test_parse_rejects_self(self):
        with pytest.raises(ValueError, match="self"):
            parse_trace(["3,7,7"])

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="bad trace line"):
            parse_trace(["1,2"])

    def test_parse_skips_header_and_blanks(self):
        events = parse_trace(["cycle,src,dst", "", "1,0,2"])
        assert events == [TraceEvent(1, 0, 2)]


class TestRecorder:
    def test_records_everything(self, topo):
        gen = BernoulliTraffic(
            UniformPattern(topo, random.Random(1)), 0.5, 8, topo.num_nodes, 3
        )
        rec = TraceRecorder(gen)
        emitted = []
        for cycle in range(50):
            emitted.extend(
                (cycle, s, d) for s, d in rec.packets_for_cycle(cycle)
            )
        assert [(e.cycle, e.src, e.dst) for e in rec.events] == emitted
        assert len(rec.events) > 0

    def test_csv_parses_back(self, topo):
        gen = BernoulliTraffic(
            UniformPattern(topo, random.Random(1)), 0.5, 8, topo.num_nodes, 3
        )
        rec = TraceRecorder(gen)
        for cycle in range(20):
            rec.packets_for_cycle(cycle)
        assert parse_trace(rec.to_csv().splitlines()) == rec.events


class TestReplay:
    def test_exact_replay(self):
        events = [TraceEvent(0, 1, 2), TraceEvent(0, 3, 4), TraceEvent(7, 5, 6)]
        gen = TraceTraffic(events)
        assert list(gen.packets_for_cycle(0)) == [(1, 2), (3, 4)]
        assert list(gen.packets_for_cycle(3)) == []
        assert list(gen.packets_for_cycle(7)) == [(5, 6)]
        assert not gen.finished(7)
        assert gen.finished(8)

    def test_time_scale(self):
        gen = TraceTraffic([TraceEvent(10, 0, 1)], time_scale=2.0)
        assert list(gen.packets_for_cycle(20)) == [(0, 1)]
        assert list(gen.packets_for_cycle(10)) == []

    def test_loop(self):
        gen = TraceTraffic([TraceEvent(0, 0, 1), TraceEvent(4, 2, 3)], loop=2)
        assert gen.total_events == 4
        assert list(gen.packets_for_cycle(5)) == [(0, 1)]  # second pass
        assert gen.finished(10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TraceTraffic([], time_scale=0)
        with pytest.raises(ValueError):
            TraceTraffic([], loop=0)

    def test_replay_through_simulator(self, topo):
        """Record a run, replay it: same packets created at same cycles."""
        cfg = SimulationConfig.small(h=2, routing="ofar")

        def created(gen):
            sim = Simulator(cfg)
            sim.generator = gen
            log = []
            orig = sim.create_packet

            def spy(src, dst, cycle=None):
                pkt = orig(src, dst, cycle)
                log.append((pkt.created_cycle, src, dst))
                return pkt

            sim.create_packet = spy
            sim.run(100)
            return log

        base = BernoulliTraffic(
            UniformPattern(topo, random.Random(2)), 0.3, 8, topo.num_nodes, 7
        )
        rec = TraceRecorder(base)
        first = created(rec)
        second = created(TraceTraffic(rec.events))
        assert first == second


class TestSynthesize:
    def test_phase_boundaries(self, topo):
        quiet = UniformPattern(topo, random.Random(3))
        events = synthesize_phases(
            [(quiet, 0.5, 100), (quiet, 0.0, 50), (quiet, 0.5, 100)],
            packet_size=8, num_nodes=topo.num_nodes, seed=4,
        )
        cycles = [e.cycle for e in events]
        assert min(cycles) < 100
        assert all(not (100 <= c < 150) for c in cycles)  # silent phase
        assert any(c >= 150 for c in cycles)

    def test_invalid_duration(self, topo):
        with pytest.raises(ValueError):
            synthesize_phases(
                [(UniformPattern(topo, random.Random(1)), 0.5, 0)],
                8, topo.num_nodes, 1,
            )
