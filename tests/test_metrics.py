"""Tests for the metrics collector and LoadPoint summaries."""

import pytest

from repro.engine.metrics import Metrics
from repro.network.packet import Packet


def mk_pkt(created=0, injected=5, size=8, hops=3, local=2, glob=1):
    p = Packet(pid=0, src=0, dst=50, size=size, created_cycle=created,
               dst_router=25, dst_group=3, src_group=0)
    p.injected_cycle = injected
    p.hops = hops
    p.local_hops = local
    p.global_hops = glob
    return p


class TestMetrics:
    def test_eject_accumulates(self):
        m = Metrics(num_nodes=10, packet_size=8)
        m.on_eject(mk_pkt(created=0), cycle=100)
        m.on_eject(mk_pkt(created=50), cycle=150)
        assert m.ejected_packets == 2
        assert m.ejected_phits == 16
        assert m.latency_sum == 200
        assert m.max_latency == 100

    def test_network_latency_separate(self):
        m = Metrics(num_nodes=10, packet_size=8)
        m.on_eject(mk_pkt(created=0, injected=40), cycle=100)
        assert m.latency_sum == 100
        assert m.network_latency_sum == 60

    def test_reset_clears_window(self):
        m = Metrics(num_nodes=10, packet_size=8)
        m.on_eject(mk_pkt(), cycle=100)
        m.reset(200)
        assert m.ejected_packets == 0
        assert m.latency_sum == 0
        assert m.window_start == 200

    def test_load_point_throughput(self):
        m = Metrics(num_nodes=10, packet_size=8)
        m.reset(0)
        for _ in range(25):
            m.on_eject(mk_pkt(), cycle=80)
        pt = m.load_point(offered_load=0.3, cycle=100)
        # 25 packets * 8 phits / (10 nodes * 100 cycles) = 0.2
        assert pt.throughput == pytest.approx(0.2)
        assert pt.offered_load == 0.3
        assert pt.window_cycles == 100
        assert pt.avg_hops == 3.0

    def test_load_point_empty_window(self):
        m = Metrics(num_nodes=10, packet_size=8)
        pt = m.load_point(0.1, cycle=50)
        assert pt.throughput == 0.0
        assert pt.ejected_packets == 0

    def test_ring_and_misroute_rates(self):
        m = Metrics(num_nodes=10, packet_size=8)
        p1, p2 = mk_pkt(), mk_pkt()
        p1.used_ring = True
        p1.misroutes_local = 2
        p2.misroutes_global = 1
        m.on_eject(p1, 10)
        m.on_eject(p2, 10)
        pt = m.load_point(0.1, cycle=100)
        assert pt.ring_fraction == 0.5
        assert pt.local_misroute_rate == 1.0
        assert pt.global_misroute_rate == 0.5

    def test_send_latency_buckets(self):
        m = Metrics(num_nodes=10, packet_size=8, record_send_latency=True,
                    send_bucket=10)
        m.on_eject(mk_pkt(created=3), cycle=53)   # bucket 0, lat 50
        m.on_eject(mk_pkt(created=7), cycle=37)   # bucket 0, lat 30
        m.on_eject(mk_pkt(created=15), cycle=75)  # bucket 10, lat 60
        series = m.send_latency_series()
        assert series == [(0, 40.0), (10, 60.0)]

    def test_send_latency_disabled_by_default(self):
        m = Metrics(num_nodes=10, packet_size=8)
        m.on_eject(mk_pkt(), cycle=9)
        assert m.send_latency == {}

    def test_latency_percentiles(self):
        m = Metrics(num_nodes=10, packet_size=8, histogram_bucket=1)
        for lat in range(1, 101):  # latencies 1..100
            m.on_eject(mk_pkt(created=0), cycle=lat)
        assert m.latency_percentile(0.5) == 50 + 1  # bucket upper edge
        assert m.latency_percentile(0.99) == 100
        assert m.latency_percentile(1.0) == 101

    def test_percentile_empty(self):
        m = Metrics(num_nodes=10, packet_size=8)
        assert m.latency_percentile(0.5) == 0.0

    def test_percentile_invalid_fraction(self):
        import pytest
        m = Metrics(num_nodes=10, packet_size=8)
        with pytest.raises(ValueError):
            m.latency_percentile(0.0)

    def test_load_point_percentiles_ordered(self):
        m = Metrics(num_nodes=10, packet_size=8)
        for lat in (10, 20, 30, 500):
            m.on_eject(mk_pkt(created=0), cycle=lat)
        pt = m.load_point(0.1, cycle=600)
        assert pt.p50_latency <= pt.p99_latency
        assert pt.p99_latency >= 500

    def test_jain_index_fair(self):
        m = Metrics(num_nodes=4, packet_size=8, record_per_source=True)
        for src in range(4):
            p = mk_pkt()
            p.src = src
            m.on_eject(p, 10)
        assert m.jain_index(4) == pytest.approx(1.0)

    def test_jain_index_starved(self):
        m = Metrics(num_nodes=4, packet_size=8, record_per_source=True)
        for _ in range(10):
            p = mk_pkt()
            p.src = 0
            m.on_eject(p, 10)
        assert m.jain_index(4) == pytest.approx(0.25)
        assert m.worst_source_share(4) == 0.0

    def test_jain_requires_flag(self):
        m = Metrics(num_nodes=4, packet_size=8)
        with pytest.raises(ValueError):
            m.jain_index(4)

    def test_worst_source_share_even(self):
        m = Metrics(num_nodes=2, packet_size=8, record_per_source=True)
        for src in (0, 0, 1, 1):
            p = mk_pkt()
            p.src = src
            m.on_eject(p, 5)
        assert m.worst_source_share(2) == pytest.approx(1.0)

    def test_jain_empty(self):
        m = Metrics(num_nodes=4, packet_size=8, record_per_source=True)
        assert m.jain_index(4) == 1.0
        assert m.worst_source_share(4) == 1.0

    def test_as_row_keys(self):
        m = Metrics(num_nodes=4, packet_size=8)
        m.on_eject(mk_pkt(), 20)
        row = m.load_point(0.2, 100).as_row()
        assert {"load", "throughput", "latency", "hops", "ring_frac"} <= set(row)
