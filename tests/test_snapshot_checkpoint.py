"""Mid-run checkpointing: crash recovery without a reproducibility tax.

Covers repro.snapshot.checkpoint and the orchestrator's
``snapshot_every`` integration: checkpointed runs produce bit-identical
results, a resume picks up from the last checkpoint instead of cycle 0,
corruption reads as a miss, and — the headline — a worker SIGKILLed
mid-point is retried and resumes from its own checkpoint, ending with
the identical final result.
"""

import dataclasses
import functools
import os
import signal

import pytest

from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.orchestrator import Orchestrator
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.snapshot.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    run_spec_checkpointed,
)


def point_doc(pt) -> dict:
    return {k: repr(v) for k, v in dataclasses.asdict(pt).items()}


def steady_spec(seed=7) -> RunSpec:
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=seed)
    return RunSpec(cfg, "ADV+1", 0.3, warmup=200, measure=200)


def workload_spec() -> RunSpec:
    from repro.workloads.spec import JobSpec, WorkloadSpec

    workload = WorkloadSpec(
        jobs=(
            JobSpec(name="steady", nodes=24, pattern="UN", load=0.15),
            JobSpec(name="bully", nodes=24, pattern="ADV+2", load=0.3,
                    start=150, stop=450),
            JobSpec(name="burst", nodes=8, traffic="burst", packets_per_node=2),
        ),
        placement="round-robin-groups",
    )
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=17)
    return RunSpec.for_workload(cfg, workload, warmup=300, measure=300)


class TestRunSpecCheckpointed:
    def test_identical_to_plain_run(self, tmp_path):
        spec = steady_spec()
        pt = run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        assert point_doc(pt) == point_doc(run_spec(spec))

    def test_checkpoint_removed_on_success(self, tmp_path):
        spec = steady_spec()
        run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        assert not checkpoint_path(tmp_path, spec.fingerprint()).exists()

    def test_resume_from_midrun_checkpoint(self, tmp_path):
        # Kill the first run right after a checkpoint lands, organically.
        spec = steady_spec()
        ref = point_doc(run_spec(spec))
        _CheckpointBomb(after=2).arm()
        with pytest.raises(_Boom):
            run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        snap = load_checkpoint(tmp_path, spec)
        assert snap is not None and snap.cycle == 128
        pt = run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        assert point_doc(pt) == ref

    def test_corrupt_checkpoint_reads_as_miss(self, tmp_path):
        spec = steady_spec()
        path = checkpoint_path(tmp_path, spec.fingerprint())
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        pt = run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        assert point_doc(pt) == point_doc(run_spec(spec))

    def test_foreign_spec_checkpoint_ignored(self, tmp_path):
        # A checkpoint for seed=9 parked under seed=7's slot must be a miss.
        other = steady_spec(seed=9)
        from repro.engine.runner import _build_steady_sim
        from repro.snapshot import Snapshot

        sim = _build_steady_sim(other)
        sim.run(30)
        spec = steady_spec(seed=7)
        Snapshot.capture(sim, spec=other).save(
            str(checkpoint_path(tmp_path, spec.fingerprint()))
        )
        assert load_checkpoint(tmp_path, spec) is None
        pt = run_spec_checkpointed(spec, tmp_path, snapshot_every=64)
        assert point_doc(pt) == point_doc(run_spec(spec))

    def test_workload_spec_checkpointed(self, tmp_path):
        from repro.workloads.runner import (
            SIDECAR_KIND,
            WorkloadResult,
            run_workload,
        )

        spec = workload_spec()
        ref = run_workload(spec)
        pt = run_spec_checkpointed(spec, tmp_path, snapshot_every=100)
        assert point_doc(pt) == point_doc(ref.total)
        payload = ResultStore(tmp_path).get_sidecar(SIDECAR_KIND, spec)
        assert payload is not None
        full = WorkloadResult.from_jsonable(payload)
        assert [[repr(x) for x in row] for row in full.interference] == [
            [repr(x) for x in row] for row in ref.interference
        ]

    def test_telemetry_series_survives_checkpointed_run(self, tmp_path):
        from repro.engine.runner import run_spec_with_telemetry
        from repro.telemetry.config import TelemetryConfig

        spec = steady_spec()
        tcfg = TelemetryConfig(interval=50, per_link=True)
        pt_ref, series_ref = run_spec_with_telemetry(spec, tcfg)
        tdir = tmp_path / "telemetry"
        pt = run_spec_checkpointed(
            spec, tmp_path, snapshot_every=64, telemetry=tcfg, telemetry_dir=tdir
        )
        assert point_doc(pt) == point_doc(pt_ref)
        from repro.telemetry.export import write_jsonl

        fp = spec.fingerprint()
        ref_path = tmp_path / "ref.jsonl"
        write_jsonl(series_ref, ref_path)
        assert (tdir / fp[:2] / f"{fp}.jsonl").read_text() == ref_path.read_text()

    def test_snapshot_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            run_spec_checkpointed(steady_spec(), tmp_path, snapshot_every=0)


class _Boom(RuntimeError):
    pass


class _CheckpointBomb:
    """Patch Snapshot.save to raise after N saves (in-process crash)."""

    def __init__(self, after: int):
        self.after = after
        self.count = 0

    def arm(self) -> bool:
        from repro.snapshot import snapshot as snapmod

        original = snapmod.Snapshot.save
        bomb = self

        def exploding_save(snap_self, path):
            original(snap_self, path)
            bomb.count += 1
            if bomb.count >= bomb.after:
                snapmod.Snapshot.save = original
                raise _Boom("simulated crash after checkpoint write")

        snapmod.Snapshot.save = exploding_save
        return True


# ----------------------------------------------------------------------
# Orchestrator integration
# ----------------------------------------------------------------------
def _sigkill_once_worker(store_root, every, flag_path, resume_log, spec):
    """Module-level (picklable) worker: first attempt checkpoints then
    SIGKILLs itself right after the first checkpoint write lands; the
    retry records where it resumed from and finishes normally."""
    from repro.snapshot import snapshot as snapmod
    from repro.snapshot.checkpoint import load_checkpoint

    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("armed")
        original = snapmod.Snapshot.save

        def save_and_die(snap_self, path):
            original(snap_self, path)
            os.kill(os.getpid(), signal.SIGKILL)

        snapmod.Snapshot.save = save_and_die
    else:
        snap = load_checkpoint(store_root, spec)
        with open(resume_log, "w") as fh:
            fh.write(str(snap.cycle if snap is not None else -1))
    return run_spec_checkpointed(spec, store_root, every)


def _always_fail_worker(spec):
    raise RuntimeError("boom")


class TestOrchestratorCheckpointing:
    def test_snapshot_every_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            Orchestrator(workers=0, snapshot_every=100)

    def test_snapshot_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            Orchestrator(store=ResultStore(tmp_path), snapshot_every=0)

    def test_orchestrated_checkpointed_grid_matches_plain(self, tmp_path):
        specs = [steady_spec(seed=s) for s in (3, 4)]
        ref = [point_doc(run_spec(s)) for s in specs]
        orch = Orchestrator(
            workers=0, store=ResultStore(tmp_path), retries=0, snapshot_every=64
        )
        got = [point_doc(p) for p in orch.run_points(specs)]
        assert got == ref

    def test_sigkilled_worker_resumes_from_checkpoint(self, tmp_path):
        spec = steady_spec()
        ref = point_doc(run_spec(spec))
        store = ResultStore(tmp_path / "store")
        flag = str(tmp_path / "killed.flag")
        resume_log = str(tmp_path / "resume.log")
        worker = functools.partial(
            _sigkill_once_worker, str(store.root), 64, flag, resume_log
        )
        orch = Orchestrator(workers=1, store=store, retries=1, worker=worker)
        results = orch.run([spec])
        assert results[0].status == "done"
        assert results[0].attempts == 2, "first attempt must have died"
        assert point_doc(results[0].point) == ref
        # The retry really did resume mid-run (from the cycle-64 save),
        # not restart from cycle 0.
        assert os.path.exists(flag)
        with open(resume_log) as fh:
            assert int(fh.read()) == 64
        # and the completed point cleaned up its checkpoint slot
        assert not checkpoint_path(store.root, spec.fingerprint()).exists()

    def test_failed_point_checkpoint_cleared(self, tmp_path):
        # A point that exhausts its retry budget will never resume; its
        # mid-run checkpoint must not accumulate in the store forever.
        spec = steady_spec()
        store = ResultStore(tmp_path)
        path = checkpoint_path(store.root, spec.fingerprint())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{}")
        orch = Orchestrator(workers=0, store=store, retries=0,
                            snapshot_every=64, worker=_always_fail_worker)
        results = orch.run([spec])
        assert results[0].status == "failed"
        assert not path.exists()
