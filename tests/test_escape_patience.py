"""Tests for the escape-patience mechanism and ring identity tracking."""

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.network.router import KIND_RING_ENTER
from repro.topology.dragonfly import PortKind


def make_sim(patience, **overrides):
    cfg = SimulationConfig.small(
        h=2, routing="ofar", escape="physical", escape_patience=patience,
        **overrides,
    )
    return Simulator(cfg)


def block_everything(sim, rt, pkt, port):
    """Starve all data outputs so only the ring remains."""
    rt.in_bufs[port][0].push(pkt)
    rt.pending.add((port, 0))
    sim.network.wake_router(rt)  # manual plant bypasses try_inject
    up = rt.upstream[port]
    sim.network.routers[up[0]].out[up[1]].credits[0] -= pkt.size
    sim.network.injected_packets += 1
    for ch in rt.out:
        if ch is not None and ch.kind in (PortKind.LOCAL, PortKind.GLOBAL):
            for vc in ch.data_vcs:
                ch.credits[vc] = 0


def fully_blocked_packet(sim):
    topo = sim.network.topo
    rt = sim.network.routers[0]
    pkt = sim.create_packet(topo.p * 1, topo.num_nodes - 1)
    pkt.global_misrouted = True
    pkt.local_misroute_group = 0
    port = topo.local_port(0, 1)
    block_everything(sim, rt, pkt, port)
    return rt, port, pkt


class TestPatience:
    def test_zero_patience_escapes_immediately(self):
        sim = make_sim(0)
        rt, port, pkt = fully_blocked_packet(sim)
        req = sim.routing.route(rt, port, 0, pkt, 100)
        assert req is not None and req[2] == KIND_RING_ENTER

    def test_patience_defers_escape(self):
        sim = make_sim(16)
        rt, port, pkt = fully_blocked_packet(sim)
        assert sim.routing.route(rt, port, 0, pkt, 100) is None  # clock starts
        assert sim.routing.route(rt, port, 0, pkt, 110) is None  # 10 < 16
        req = sim.routing.route(rt, port, 0, pkt, 116)
        assert req is not None and req[2] == KIND_RING_ENTER

    def test_head_clock_starts_at_first_evaluation(self):
        sim = make_sim(8)
        rt, port, pkt = fully_blocked_packet(sim)
        assert pkt.head_cycle == -1
        sim.routing.route(rt, port, 0, pkt, 42)
        assert pkt.head_cycle == 42

    def test_head_clock_resets_on_grant(self):
        sim = make_sim(0)
        pkt = sim.create_packet(0, 1)  # same-router ejection
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert pkt.head_cycle == 0
        rt.allocate(0, sim.routing, sim.network)
        assert pkt.head_cycle == -1  # popped: clock cleared

    def test_patience_does_not_block_forever(self):
        """A blocked packet still escapes once the clock runs out, end
        to end (release nothing; ring delivers)."""
        sim = make_sim(8, max_ring_exits=0)
        rt, port, pkt = fully_blocked_packet(sim)
        sim.run(50_000)
        # Ring carried it to the destination despite zero exits.
        assert pkt.ejected_cycle > 0
        assert pkt.ring_hops > 0


def self_vc(rt, port):
    for vc, buf in enumerate(rt.in_bufs[port]):
        if buf:
            return vc
    raise AssertionError("no packet queued")


class TestRingIdentity:
    def test_ring_id_set_and_cleared(self):
        sim = make_sim(0)
        rt, port, pkt = fully_blocked_packet(sim)
        sim.run(30_000)
        assert pkt.ejected_cycle > 0
        assert pkt.used_ring
        assert not pkt.on_ring
        assert pkt.ring_id == -1  # cleared at exit/ejection

    def test_two_ring_packets_stay_on_their_ring(self):
        cfg = SimulationConfig.small(
            h=2, routing="ofar", escape="embedded", escape_rings=2,
            escape_patience=0,
        )
        sim = Simulator(cfg)
        net = sim.network
        # Record which ring every RING_MOVE uses; a packet must only
        # move along the ring it entered.
        moves: dict[int, set[int]] = {}
        orig = net.execute_grant

        def spy(rt, in_port, in_vc, out_port, out_vc, kind, cycle):
            from repro.network.router import KIND_RING_MOVE

            pkt = rt.in_bufs[in_port][in_vc].head()
            if kind == KIND_RING_MOVE:
                ring = net.ring_of_channel[(rt.rid, out_port)]
                moves.setdefault(pkt.pid, set()).add(ring)
            return orig(rt, in_port, in_vc, out_port, out_vc, kind, cycle)

        net.execute_grant = spy
        topo = net.topo
        rng = __import__("random").Random(1)
        npg = topo.p * topo.a
        for node in range(topo.num_nodes):
            g = node // npg
            for _ in range(4):
                sim.create_packet(
                    node, ((g + 2) % topo.num_groups) * npg + rng.randrange(npg)
                )
        # Starve buffers indirectly by using a tiny config?  Instead,
        # lower all local/global credits to force escapes early on.
        sim.run_until_drained(2_000_000)
        for pid, rings in moves.items():
            assert len(rings) == 1, f"packet {pid} moved on rings {rings}"
