"""Tests for the declarative campaign layer.

Pins the contracts the layer exists for: ``inherits:`` deep-merge
semantics (missing bases and cycles are hard errors), the deterministic
expansion order (declared axes outermost-first, seeds innermost), the
byte-identity of campaign points with hand-built driver RunSpecs, the
replication/CI aggregation math, and the end-to-end resume story — a
second run of a campaign against the same store is 100% cache hits.
"""

import json
import math
from pathlib import Path

import pytest

from repro.analysis.store import ResultStore
from repro.campaign import (
    CampaignError,
    CampaignSpec,
    deep_merge,
    emit,
    load_campaign,
    load_mapping,
    mean_ci,
    run_campaign,
    t_critical,
    validate_post,
)
from repro.engine.orchestrator import Orchestrator
from repro.experiments.common import TINY

CAMPAIGNS = Path(__file__).resolve().parent.parent / "campaigns"


def mapping(**overrides):
    """A minimal valid steady campaign mapping."""
    data = {
        "name": "t",
        "scale": "tiny",
        "combination": {"routing": ["min"], "pattern": ["UN"], "load": [0.1]},
    }
    data.update(overrides)
    return data


# ----------------------------------------------------------------------
# deep_merge + inherits
# ----------------------------------------------------------------------

class TestDeepMerge:
    def test_nested_override_keeps_siblings(self):
        base = {"config": {"seed": 1, "h": 3}, "name": "base"}
        out = deep_merge(base, {"config": {"seed": 7}})
        assert out == {"config": {"seed": 7, "h": 3}, "name": "base"}

    def test_lists_replace_wholesale(self):
        out = deep_merge({"c": {"routing": ["min", "pb"]}},
                         {"c": {"routing": ["ofar"]}})
        assert out["c"]["routing"] == ["ofar"]

    def test_scalar_replaces_dict(self):
        assert deep_merge({"a": {"x": 1}}, {"a": 2}) == {"a": 2}

    def test_base_not_mutated(self):
        base = {"config": {"seed": 1}}
        deep_merge(base, {"config": {"seed": 9}, "extra": True})
        assert base == {"config": {"seed": 1}}


class TestInheritance:
    def test_single_level_merge(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(
            {"name": "base", "config": {"seed": 1}, "post": ["table"]}
        ))
        (tmp_path / "child.json").write_text(json.dumps(
            {"inherits": "base", "name": "child", "config": {"link_latency_local": 2}}
        ))
        data = load_mapping(tmp_path / "child.json")
        assert data["name"] == "child"
        assert data["config"] == {"seed": 1, "link_latency_local": 2}
        assert data["post"] == ["table"]
        assert "inherits" not in data

    def test_two_level_chain(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps({"name": "a", "config": {"seed": 1}}))
        (tmp_path / "b.json").write_text(json.dumps({"inherits": "a", "scale": "tiny"}))
        (tmp_path / "c.json").write_text(json.dumps({"inherits": "b", "name": "c"}))
        data = load_mapping(tmp_path / "c.json")
        assert data == {"name": "c", "config": {"seed": 1}, "scale": "tiny"}

    def test_missing_base_is_campaign_error(self, tmp_path):
        (tmp_path / "child.json").write_text(json.dumps(
            {"inherits": "nonexistent", "name": "child"}
        ))
        with pytest.raises(CampaignError, match="inherited base campaign not found"):
            load_mapping(tmp_path / "child.json")

    def test_missing_file_is_campaign_error(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign file not found"):
            load_mapping(tmp_path / "nope.yaml")

    def test_cycle_is_campaign_error(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps({"inherits": "b", "name": "a"}))
        (tmp_path / "b.json").write_text(json.dumps({"inherits": "a", "name": "b"}))
        with pytest.raises(CampaignError, match="inheritance cycle"):
            load_mapping(tmp_path / "a.json")

    def test_self_cycle(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps({"inherits": "a"}))
        with pytest.raises(CampaignError, match="inheritance cycle"):
            load_mapping(tmp_path / "a.json")

    def test_invalid_json_is_campaign_error(self, tmp_path):
        (tmp_path / "a.json").write_text("{not json")
        with pytest.raises(CampaignError, match="invalid JSON"):
            load_mapping(tmp_path / "a.json")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(CampaignError, match="unknown campaign keys"):
            CampaignSpec.from_mapping(mapping(numRuns=3))

    def test_needs_name(self):
        data = mapping()
        del data["name"]
        with pytest.raises(CampaignError, match="needs a 'name'"):
            CampaignSpec.from_mapping(data)

    def test_unknown_kind(self):
        with pytest.raises(CampaignError, match="unknown campaign kind"):
            CampaignSpec.from_mapping(mapping(kind="warp"))

    def test_unknown_scale(self):
        with pytest.raises(CampaignError, match="unknown scale"):
            CampaignSpec.from_mapping(mapping(scale="galactic"))

    def test_unknown_config_override(self):
        with pytest.raises(CampaignError, match="unknown config overrides"):
            CampaignSpec.from_mapping(mapping(config={"warp_factor": 9}))

    def test_needs_combination(self):
        data = mapping()
        del data["combination"]
        with pytest.raises(CampaignError, match="non-empty 'combination'"):
            CampaignSpec.from_mapping(data)

    def test_steady_needs_load_axis(self):
        with pytest.raises(CampaignError, match="'load' axis"):
            CampaignSpec.from_mapping(
                mapping(combination={"routing": ["min"], "pattern": ["UN"]})
            )

    def test_seed_axis_forbidden(self):
        data = mapping()
        data["combination"]["seed"] = [1, 2]
        with pytest.raises(CampaignError, match="'seed' cannot be a combination axis"):
            CampaignSpec.from_mapping(data)

    def test_unknown_axis(self):
        data = mapping()
        data["combination"]["flux"] = [1]
        with pytest.raises(CampaignError, match="unknown combination axis"):
            CampaignSpec.from_mapping(data)

    def test_transition_forbidden_in_steady(self):
        data = mapping()
        data["combination"]["transition"] = [
            {"before": "UN", "after": "ADV+2", "load": 0.1}
        ]
        with pytest.raises(CampaignError, match="transient-campaign axis"):
            CampaignSpec.from_mapping(data)

    def test_transient_transition_shape(self):
        data = mapping(kind="transient")
        data["combination"] = {"routing": ["pb"], "transition": [{"before": "UN"}]}
        with pytest.raises(CampaignError, match="before, after, load"):
            CampaignSpec.from_mapping(data)

    def test_loads_must_be_numbers(self):
        data = mapping()
        data["combination"]["load"] = ["high"]
        with pytest.raises(CampaignError, match="loads must be numbers"):
            CampaignSpec.from_mapping(data)

    def test_load_grid_dict_expands_to_scale_loads(self):
        data = mapping()
        data["combination"]["load"] = {"saturating": 0.4, "points": 5}
        campaign = CampaignSpec.from_mapping(data)
        assert campaign.combination["load"] == TINY.loads(saturating=0.4, points=5)

    def test_load_grid_inline_max_windows(self):
        data = mapping()
        data["combination"]["load"] = {
            "saturating": 0.4, "points": 3, "max_windows": 9,
        }
        campaign = CampaignSpec.from_mapping(data)
        assert campaign.max_windows == 9
        assert all(pt.spec.max_windows == 9 for pt in campaign.expand())

    def test_max_windows_key_propagates_to_specs(self):
        campaign = CampaignSpec.from_mapping(mapping(max_windows=6))
        assert all(pt.spec.max_windows == 6 for pt in campaign.expand())

    def test_max_windows_validation(self):
        with pytest.raises(CampaignError, match="positive int"):
            CampaignSpec.from_mapping(mapping(max_windows=0))
        with pytest.raises(CampaignError, match="steady"):
            data = mapping(kind="transient", max_windows=4)
            data["combination"] = {
                "routing": ["pb"],
                "transition": [{"before": "UN", "after": "ADV+h", "load": 0.2}],
            }
            CampaignSpec.from_mapping(data)

    def test_backend_key_propagates_to_specs(self):
        campaign = CampaignSpec.from_mapping(mapping(backend="array"))
        points = campaign.expand()
        assert all(pt.spec.backend == "array" for pt in points)
        # Backend never forks the store key: same grid on the default
        # backend fingerprints identically.
        default = CampaignSpec.from_mapping(mapping()).expand()
        assert [pt.spec.fingerprint() for pt in points] == [
            pt.spec.fingerprint() for pt in default
        ]

    def test_backend_must_be_registered(self):
        with pytest.raises(CampaignError, match="unknown"):
            CampaignSpec.from_mapping(mapping(backend="cuda"))
        with pytest.raises(CampaignError, match="backend"):
            CampaignSpec.from_mapping(mapping(backend=3))

    def test_seeds_and_replications_exclusive(self):
        with pytest.raises(CampaignError, match="mutually exclusive"):
            CampaignSpec.from_mapping(mapping(seeds=[1, 2], replications=2))

    def test_bad_replications(self):
        with pytest.raises(CampaignError, match="positive int"):
            CampaignSpec.from_mapping(mapping(replications=0))

    def test_duplicate_seeds(self):
        with pytest.raises(CampaignError, match="duplicate seeds"):
            CampaignSpec.from_mapping(mapping(seeds=[3, 3]))

    def test_seeds_must_be_ints(self):
        with pytest.raises(CampaignError, match="list of ints"):
            CampaignSpec.from_mapping(mapping(seeds=[1.5]))

    def test_bad_window_key(self):
        with pytest.raises(CampaignError, match="'windows' keys"):
            CampaignSpec.from_mapping(mapping(windows={"cooldown": 100}))

    def test_unknown_post_emitter_rejected(self):
        campaign = CampaignSpec.from_mapping(mapping(post=["histogram"]))
        with pytest.raises(CampaignError, match="unknown post emitters"):
            validate_post(campaign)

    def test_scalar_axis_values_are_wrapped(self):
        data = mapping()
        data["combination"] = {"routing": "min", "pattern": "UN", "load": 0.1}
        campaign = CampaignSpec.from_mapping(data)
        assert campaign.combination["routing"] == ["min"]
        assert len(campaign.expand()) == 1


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------

class TestExpand:
    def test_golden_ordering(self):
        """Declared axis order outermost-first, seeds innermost."""
        campaign = CampaignSpec.from_mapping(mapping(
            combination={"routing": ["min", "ofar"], "pattern": ["UN"],
                         "load": [0.1, 0.2]},
            replications=2,
        ))
        labels = [p.label() for p in campaign.expand()]
        assert labels == [
            "routing=min pattern=UN load=0.1 seed=1",
            "routing=min pattern=UN load=0.1 seed=2",
            "routing=min pattern=UN load=0.2 seed=1",
            "routing=min pattern=UN load=0.2 seed=2",
            "routing=ofar pattern=UN load=0.1 seed=1",
            "routing=ofar pattern=UN load=0.1 seed=2",
            "routing=ofar pattern=UN load=0.2 seed=1",
            "routing=ofar pattern=UN load=0.2 seed=2",
        ]

    def test_byte_identity_with_driver_specs(self):
        """A campaign point IS the driver's RunSpec: same fingerprint."""
        campaign = CampaignSpec.from_mapping(mapping(
            combination={"routing": ["min", "ofar"], "pattern": ["UN"],
                         "load": [0.1, 0.2]},
        ))
        fps = [p.spec.fingerprint() for p in campaign.expand()]
        direct = [
            TINY.spec(routing, "UN", load).fingerprint()
            for routing in ("min", "ofar") for load in (0.1, 0.2)
        ]
        assert fps == direct

    def test_replication_seeds_derive_from_base(self):
        campaign = CampaignSpec.from_mapping(
            mapping(config={"seed": 10}, replications=3)
        )
        points = campaign.expand()
        assert [p.spec.config.seed for p in points] == [10, 11, 12]
        assert [dict(p.coords)["seed"] for p in points] == [10, 11, 12]
        assert [p.replication for p in points] == [0, 1, 2]

    def test_explicit_seeds(self):
        campaign = CampaignSpec.from_mapping(mapping(seeds=[5, 17]))
        assert [p.spec.config.seed for p in campaign.expand()] == [5, 17]

    def test_adv_h_pattern_resolves_per_point(self):
        data = mapping()
        data["combination"]["pattern"] = ["ADV+h"]
        campaign = CampaignSpec.from_mapping(data)  # tiny scale: h=2
        point = campaign.expand()[0]
        assert point.spec.pattern_spec == "ADV+2"
        assert dict(point.coords)["pattern"] == "ADV+2"

    def test_config_field_as_axis(self):
        data = mapping()
        data["combination"]["pb_threshold"] = [2, 4]
        campaign = CampaignSpec.from_mapping(data)
        points = campaign.expand()
        assert [p.spec.config.pb_threshold for p in points] == [2, 4]

    def test_h_axis_overrides_scale(self):
        data = mapping()
        data["combination"]["h"] = [2, 3]
        campaign = CampaignSpec.from_mapping(data)
        assert [p.spec.config.h for p in campaign.expand()] == [2, 3]

    def test_windows_override(self):
        campaign = CampaignSpec.from_mapping(
            mapping(windows={"warmup": 123, "measure": 456})
        )
        spec = campaign.expand()[0].spec
        assert (spec.warmup, spec.measure) == (123, 456)

    def test_transient_points(self):
        data = mapping(kind="transient", scale="tiny")
        data["combination"] = {
            "transition": [{"before": "UN", "after": "ADV+h", "load": 0.1}],
            "routing": ["pb", "ofar"],
        }
        campaign = CampaignSpec.from_mapping(data)
        points = campaign.expand()
        assert len(points) == 2
        assert points[0].spec is None
        t = points[0].transient
        assert (t.before, t.after, t.load) == ("UN", "ADV+2", 0.1)
        assert t.warmup == TINY.transient_warmup
        assert dict(points[0].coords)["transition"] == "UN->ADV+2@0.1"


# ----------------------------------------------------------------------
# Aggregation math
# ----------------------------------------------------------------------

class TestMeanCI:
    def test_three_values(self):
        m, hw = mean_ci([0.1, 0.2, 0.3])
        assert m == pytest.approx(0.2)
        assert hw == pytest.approx(4.303 * 0.1 / math.sqrt(3), rel=1e-3)

    def test_single_value_has_nan_halfwidth(self):
        m, hw = mean_ci([0.5])
        assert m == 0.5
        assert math.isnan(hw)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_nan_propagates(self):
        m, hw = mean_ci([0.1, float("nan")])
        assert math.isnan(m)

    def test_t_table(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(2) == pytest.approx(4.303)
        assert t_critical(100) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t_critical(0)


# ----------------------------------------------------------------------
# Checked-in campaign files
# ----------------------------------------------------------------------

try:
    import yaml  # noqa: F401
    _HAVE_YAML = True
except ImportError:  # pragma: no cover - PyYAML present in dev envs
    _HAVE_YAML = False

requires_yaml = pytest.mark.skipif(not _HAVE_YAML, reason="PyYAML not installed")


@requires_yaml
class TestCheckedInCampaigns:
    def test_tiny_expands_to_eight_points(self):
        campaign = load_campaign(CAMPAIGNS / "tiny.yaml")
        points = campaign.expand()
        assert len(points) == 8  # 2 routings x 2 loads x 2 seeds (CI pins this)
        assert campaign.scale.name == "tiny"
        validate_post(campaign)

    def test_fig3_grid(self):
        campaign = load_campaign(CAMPAIGNS / "fig3.yaml")
        assert campaign.seeds == (1, 2, 3)
        assert len(campaign.expand()) == 4 * 7 * 3  # routings x loads x seeds
        validate_post(campaign)

    def test_fig4_grid(self):
        campaign = load_campaign(CAMPAIGNS / "fig4.yaml")
        assert len(campaign.expand()) == 4 * 7 * 3
        validate_post(campaign)

    def test_fig6_grid(self):
        campaign = load_campaign(CAMPAIGNS / "fig6.yaml")
        assert campaign.kind == "transient"
        assert len(campaign.expand()) == 3 * 3  # transitions x routings
        validate_post(campaign)

    def test_fig6_variant_differs_only_in_policy(self):
        base = load_campaign(CAMPAIGNS / "fig6.yaml")
        variant = load_campaign(CAMPAIGNS / "fig6_global_first.yaml")
        assert variant.combination == base.combination
        assert variant.config["ofar_transit_misroute"] == "global-first"

    def test_scale_override(self):
        campaign = load_campaign(CAMPAIGNS / "fig3.yaml", scale="tiny")
        assert campaign.scale.name == "tiny"
        # The load grid re-derives from the overridden scale's sweep.
        assert campaign.combination["load"] == TINY.loads(saturating=0.56, points=7)


# ----------------------------------------------------------------------
# End-to-end: run + emit + resume
# ----------------------------------------------------------------------

def _fast_campaign(tmp_path, **overrides):
    data = mapping(
        name="e2e",
        combination={"routing": ["min", "ofar"], "pattern": ["UN"],
                     "load": [0.1]},
        windows={"warmup": 100, "measure": 150},
        replications=2,
        post=["table", "aggregate"],
    )
    data.update(overrides)
    path = tmp_path / "e2e.json"
    path.write_text(json.dumps(data))
    return load_campaign(path)


class TestRunCampaign:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        campaign = _fast_campaign(tmp_path)
        store = ResultStore(tmp_path / "store")
        first = run_campaign(campaign, Orchestrator(workers=0, store=store))
        assert first.counts["done"] == 4
        assert first.counts["cached"] == 0
        second = run_campaign(campaign, Orchestrator(workers=0, store=store))
        assert second.counts["cached"] == 4
        assert second.counts["done"] == 0
        assert second.outcomes == first.outcomes  # bit-identical via cache

    def test_inline_matches_orchestrated(self, tmp_path):
        campaign = _fast_campaign(tmp_path)
        inline = run_campaign(campaign)
        orchestrated = run_campaign(campaign, Orchestrator(workers=0))
        assert inline.outcomes == orchestrated.outcomes

    def test_emitters(self, tmp_path):
        campaign = _fast_campaign(tmp_path)
        run = run_campaign(campaign)
        tables = dict(emit(run))
        assert set(tables) == {"table", "aggregate"}
        assert len(tables["table"].rows) == 4
        assert "seed" in tables["table"].rows[0]  # multi-seed keeps the column
        agg = tables["aggregate"].rows
        assert len(agg) == 2  # one row per grid point, seeds collapsed
        assert all(row["n"] == 2 for row in agg)
        assert all(row["thr_ci"] is not None for row in agg)

    def test_single_seed_table_omits_seed_column(self, tmp_path):
        campaign = _fast_campaign(tmp_path, replications=1,
                                  combination={"routing": ["min"],
                                               "pattern": ["UN"],
                                               "load": [0.1]})
        tables = dict(emit(run_campaign(campaign)))
        assert "seed" not in tables["table"].rows[0]


class TestCampaignCLI:
    @requires_yaml
    def test_validate(self, capsys):
        from repro.cli import main

        main(["campaign", "validate", str(CAMPAIGNS / "fig3.yaml")])
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "points     : 84" in out

    @requires_yaml
    def test_expand(self, capsys):
        from repro.cli import main

        main(["campaign", "expand", str(CAMPAIGNS / "tiny.yaml")])
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 8
        assert "routing=min pattern=UN load=0.1 seed=1" in lines[0]

    def test_run_with_out_dir(self, capsys, tmp_path):
        from repro.cli import main

        _fast_campaign(tmp_path)  # writes e2e.json
        out_dir = tmp_path / "csv"
        main(["campaign", "run", str(tmp_path / "e2e.json"),
              "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert "[campaign e2e] 4 points: 4 run, 0 cached, 0 failed" in out
        assert (out_dir / "e2e_table.csv").exists()
        assert (out_dir / "e2e_aggregate.csv").exists()

    @requires_yaml
    def test_scale_override_flag(self, capsys):
        from repro.cli import main

        main(["campaign", "validate", str(CAMPAIGNS / "fig3.yaml"),
              "--scale", "tiny"])
        assert "tiny" in capsys.readouterr().out

    def test_bad_campaign_exits_cleanly(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad"}))
        with pytest.raises(SystemExit, match="campaign error"):
            main(["campaign", "validate", str(path)])
