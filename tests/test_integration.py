"""Integration: end-to-end delivery for every (routing, pattern) pair."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import _pattern_rng, run_spec
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern

ROUTINGS = ["min", "val", "ugal", "pb", "ofar", "ofar-l"]
PATTERNS = ["UN", "ADV+1", "ADV+2", "ADV-LOCAL", "MIX2"]


@pytest.mark.parametrize("routing", ROUTINGS)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_all_packets_delivered(routing, pattern):
    """Moderate load, then stop traffic: everything must drain, packets
    intact, counters conserved."""
    cfg = SimulationConfig.small(h=2, routing=routing)
    sim = Simulator(cfg)
    topo = sim.network.topo
    p = make_pattern(topo, _pattern_rng(cfg, 3), pattern)
    sim.generator = BernoulliTraffic(p, 0.25, 8, topo.num_nodes, 13)
    sim.run(300)
    sim.generator = None
    sim.run_until_drained(200_000)
    assert sim.network.ejected_packets == sim.created_packets
    sim.network.check_conservation()


@pytest.mark.parametrize("routing", ROUTINGS)
def test_packets_arrive_at_right_node(routing):
    """Spot-check correctness of delivery, not just completion."""
    cfg = SimulationConfig.small(h=2, routing=routing)
    sim = Simulator(cfg)
    delivered = {}

    def spy(pkt, cycle):
        delivered[pkt.pid] = pkt

    sim.network.on_eject = spy
    rng = __import__("random").Random(4)
    expected = {}
    for _ in range(40):
        src, dst = rng.randrange(72), rng.randrange(72)
        if src == dst:
            continue
        pkt = sim.create_packet(src, dst)
        expected[pkt.pid] = (src, dst)
    sim.run_until_drained(200_000)
    assert set(delivered) == set(expected)
    for pid, (src, dst) in expected.items():
        assert (delivered[pid].src, delivered[pid].dst) == (src, dst)


class TestRelativePerformance:
    """The paper's qualitative orderings at small scale (h=2).

    These are the headline claims; the benchmarks measure them more
    finely at h=3.
    """

    def test_min_collapses_under_adversarial(self):
        cfg = SimulationConfig.small(h=2, routing="min")
        pt = run_spec(RunSpec(cfg, "ADV+2", 0.3, warmup=600, measure=600))
        # MIN is bounded by 1/(2h^2) = 0.125 plus scheduling slack.
        assert pt.throughput < 0.2

    def test_ofar_beats_valiant_under_adversarial(self):
        val = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="val"), "ADV+2", 0.4, 600, 600
        ))
        ofar = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="ofar"), "ADV+2", 0.4, 600, 600
        ))
        assert ofar.throughput > val.throughput

    def test_ofar_beats_pb_under_adversarial(self):
        pb = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="pb"), "ADV+2", 0.45, 600, 600
        ))
        ofar = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="ofar"), "ADV+2", 0.45, 600, 600
        ))
        assert ofar.throughput > pb.throughput

    def test_ofar_latency_competitive_with_min_uniform(self):
        """§VI-A: OFAR latency at low uniform load is close to MIN's."""
        mn = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="min"), "UN", 0.1, 600, 600
        ))
        ofar = run_spec(RunSpec(
            SimulationConfig.small(h=2, routing="ofar"), "UN", 0.1, 600, 600
        ))
        assert ofar.avg_latency < 1.4 * mn.avg_latency

    def test_valiant_throughput_pattern_independent(self):
        """VAL randomizes everything: UN vs ADV differ little."""
        cfg = SimulationConfig.small(h=2, routing="val")
        un = run_spec(RunSpec(cfg, "UN", 0.3, 600, 600))
        adv = run_spec(RunSpec(cfg, "ADV+1", 0.3, 600, 600))
        assert abs(un.throughput - adv.throughput) < 0.08

    def test_escape_ring_rarely_used_at_moderate_load(self):
        """§VII: the ring resolves deadlocks, it does not carry traffic."""
        cfg = SimulationConfig.small(h=2, routing="ofar")
        pt = run_spec(RunSpec(cfg, "UN", 0.3, 600, 600))
        assert pt.ring_fraction < 0.01
