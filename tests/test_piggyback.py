"""Tests for the Piggybacking (PB) mechanism."""

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator


def make_sim(**overrides):
    cfg = SimulationConfig.small(h=2, routing="pb", **overrides)
    return Simulator(cfg)


class TestFlags:
    def test_initially_clear(self):
        sim = make_sim()
        pb = sim.routing
        for g in range(sim.network.topo.num_groups):
            for dst in range(sim.network.topo.num_groups):
                if g != dst:
                    assert not pb.channel_flag(g, dst)

    def test_flag_set_when_channel_saturated(self):
        sim = make_sim(pb_threshold=0.35)
        pb = sim.routing
        topo = sim.network.topo
        owner_r, k = topo.group_route(0, 1)
        rt = sim.network.routers[topo.router_id(0, owner_r)]
        ch = rt.out[topo.global_port(k)]
        for vc in ch.data_vcs:
            ch.credits[vc] = 0  # occupancy 100%
        pb.tick(0)
        assert pb.channel_flag(0, 1)
        # Other channels unaffected.
        assert not pb.channel_flag(0, 2)

    def test_flag_updates_respect_period(self):
        sim = make_sim(pb_update_period=10)
        pb = sim.routing
        topo = sim.network.topo
        owner_r, k = topo.group_route(0, 1)
        rt = sim.network.routers[topo.router_id(0, owner_r)]
        ch = rt.out[topo.global_port(k)]
        pb.tick(0)
        for vc in ch.data_vcs:
            ch.credits[vc] = 0
        pb.tick(5)  # within the broadcast period: stale flags
        assert not pb.channel_flag(0, 1)
        pb.tick(10)
        assert pb.channel_flag(0, 1)

    def test_threshold_boundary(self):
        sim = make_sim(pb_threshold=0.5)
        pb = sim.routing
        topo = sim.network.topo
        owner_r, k = topo.group_route(0, 1)
        rt = sim.network.routers[topo.router_id(0, owner_r)]
        ch = rt.out[topo.global_port(k)]
        half = ch.capacity // 2
        for vc in ch.data_vcs:
            ch.credits[vc] = half
        pb.tick(0)
        assert not pb.channel_flag(0, 1)  # exactly at threshold: not over
        for vc in ch.data_vcs:
            ch.credits[vc] = half - 1
        pb._last_update = -1
        pb.tick(0)
        assert pb.channel_flag(0, 1)


class TestInjectionDecision:
    def test_low_load_minimal(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        sim.routing.on_inject(pkt)
        assert pkt.intermediate_group == -1

    def test_intragroup_always_minimal(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 10)  # same group (h=2: nodes 0..15)
        sim.routing.on_inject(pkt)
        assert pkt.intermediate_group == -1

    def test_flagged_min_channel_forces_valiant(self):
        sim = make_sim()
        pb = sim.routing
        topo = sim.network.topo
        dst = 71
        dst_group = topo.node_group(dst)
        owner_r, k = topo.group_route(0, dst_group)
        rt = sim.network.routers[topo.router_id(0, owner_r)]
        ch = rt.out[topo.global_port(k)]
        for vc in ch.data_vcs:
            ch.credits[vc] = 0
        pb.tick(0)
        misrouted = 0
        for _ in range(20):
            pkt = sim.create_packet(0, dst)
            pb.on_inject(pkt)
            if pkt.intermediate_group >= 0:
                misrouted += 1
        # Misroute unless the randomly drawn Valiant channel is also
        # flagged (it isn't here), so every packet must divert.
        assert misrouted == 20

    def test_flagged_val_channel_forces_minimal(self):
        sim = make_sim()
        pb = sim.routing
        topo = sim.network.topo
        # Saturate *every* channel out of group 0 except the minimal one,
        # so whatever Valiant pick is drawn, it is flagged.
        dst = 71
        dst_group = topo.node_group(dst)
        for g2 in range(1, topo.num_groups):
            if g2 == dst_group:
                continue
            owner_r, k = topo.group_route(0, g2)
            ch = sim.network.routers[topo.router_id(0, owner_r)].out[topo.global_port(k)]
            for vc in ch.data_vcs:
                ch.credits[vc] = 0
        pb.tick(0)
        for _ in range(10):
            pkt = sim.create_packet(0, dst)
            pb.on_inject(pkt)
            assert pkt.intermediate_group == -1

    def test_pb_misroutes_more_than_ugal_under_adversarial(self):
        """Under ADV traffic PB's remote flags trigger Valiant routing."""
        from repro.engine.runner import run_spec
        from repro.engine.runspec import RunSpec

        cfg = SimulationConfig.small(h=2, routing="pb")
        pt = run_spec(RunSpec(cfg, "ADV+2", 0.35, warmup=600, measure=600))
        # With flags working, most packets take the Valiant path (2
        # global hops) rather than suffering minimal congestion.
        assert pt.avg_global_hops > 1.4
