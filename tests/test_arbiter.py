"""Unit tests for the least-recently-served arbiter."""

from repro.network.arbiter import LRSArbiter


class TestLRSArbiter:
    def test_empty_requests(self):
        assert LRSArbiter().grant([]) is None

    def test_single_request(self):
        assert LRSArbiter().grant([3]) == 3

    def test_never_granted_wins_over_granted(self):
        arb = LRSArbiter()
        assert arb.grant([1, 2]) == 1  # tie on "never": lowest key
        assert arb.grant([1, 2]) == 2  # 2 never granted, beats 1

    def test_round_robin_under_contention(self):
        arb = LRSArbiter()
        grants = [arb.grant([0, 1, 2]) for _ in range(9)]
        # After the first cycle through, strict LRS order repeats.
        assert grants == [0, 1, 2] * 3

    def test_fairness_counts(self):
        arb = LRSArbiter()
        counts = {0: 0, 1: 0, 2: 0, 3: 0}
        for _ in range(400):
            counts[arb.grant([0, 1, 2, 3])] += 1
        assert set(counts.values()) == {100}

    def test_lrs_prefers_longest_waiting(self):
        arb = LRSArbiter()
        arb.grant([0])  # 0 served
        arb.grant([1])  # 1 served after 0
        assert arb.grant([0, 1]) == 0  # 0 served longer ago

    def test_absent_requester_keeps_history(self):
        arb = LRSArbiter()
        arb.grant([0, 1])  # grants 0
        arb.grant([1])  # grants 1
        arb.grant([0])  # grants 0 again (0 now most recent)
        assert arb.grant([0, 1]) == 1

    def test_peek_does_not_mutate(self):
        arb = LRSArbiter()
        assert arb.peek([5, 6]) == 5
        assert arb.peek([5, 6]) == 5  # unchanged
        assert arb.grant([5, 6]) == 5
        assert arb.peek([5, 6]) == 6

    def test_deterministic_tiebreak_by_key(self):
        arb = LRSArbiter()
        assert arb.grant([9, 4, 7]) == 4

    def test_tuple_keys(self):
        arb = LRSArbiter()
        assert arb.grant([(1, 2), (0, 5)]) == (0, 5)
        assert arb.grant([(1, 2), (0, 5)]) == (1, 2)
