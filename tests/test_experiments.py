"""Smoke tests for the per-figure experiment drivers (tiny scale)."""

import pytest

from repro.experiments import TINY, get_scale
from repro.experiments import (
    fig2_offsets,
    fig3_uniform,
    fig4_adv2,
    fig5_advh,
    fig6_transient,
    fig7_bursts,
    fig8_ring,
    fig9_reduced_vcs,
)


class TestScales:
    def test_get_scale(self):
        assert get_scale("tiny").h == 2
        assert get_scale("paper").h == 6
        assert get_scale("paper").paper_params

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_loads_reach_past_saturation(self):
        loads = TINY.loads(saturating=0.5, points=5)
        assert loads[-1] > 0.5
        assert all(b > a for a, b in zip(loads, loads[1:]))

    def test_config_factory(self):
        cfg = TINY.config("ofar")
        assert cfg.h == 2
        assert cfg.routing == "ofar"


class TestFig2:
    def test_table_columns(self):
        table = fig2_offsets.run(TINY, load=0.4, offsets=[1, 2])
        assert len(table.rows) == 2
        assert {"offset", "l2_bound", "predicted", "throughput"} <= set(table.columns)
        assert table.rows[1]["worst_case"] == "*"  # offset 2 = h at h=2

    def test_default_offsets(self):
        assert fig2_offsets.default_offsets(2) == [1, 2, 3, 4, 5, 6]
        assert fig2_offsets.default_offsets(3)[-1] == 9


class TestFig3:
    def test_runs_and_summarizes(self):
        table, series = fig3_uniform.run(TINY, loads=[0.1, 0.3])
        assert len(table.rows) == 2
        names = [s.name for s in series]
        assert names == ["min", "pb", "ofar", "ofar-l"]
        summ = fig3_uniform.summary(series)
        assert len(summ.rows) == 4


class TestFig4And5:
    def test_fig4(self):
        table, series = fig4_adv2.run(TINY, loads=[0.2])
        assert [s.name for s in series] == ["val", "pb", "ofar", "ofar-l"]
        assert len(table.rows) == 1

    def test_fig5(self):
        table, series = fig5_advh.run(TINY, loads=[0.2])
        summ = fig5_advh.summary(TINY, series)
        assert {"routing", "saturation_thr", "above_local_bound"} <= set(summ.columns)


class TestFig6:
    def test_transitions_list(self):
        trans = fig6_transient.transitions(3)
        assert ("UN", "ADV+2", 0.14) in trans
        assert ("ADV+2", "ADV+3", 0.12) in trans

    def test_run_one_and_summary(self):
        res = fig6_transient.run_one(TINY, "ofar", "UN", "ADV+2", 0.1)
        assert res.series
        summ = fig6_transient.summarize(res, tail=200)
        assert summ["pre_latency"] > 0
        assert summ["spike_latency"] >= 0

    def test_settle_crosscheck(self):
        import pytest

        from repro.telemetry import TelemetryConfig

        plain = fig6_transient.run_one(TINY, "ofar", "UN", "ADV+2", 0.1)
        with pytest.raises(ValueError, match="TelemetryConfig"):
            fig6_transient.settle_crosscheck(plain)
        res = fig6_transient.run_one(
            TINY, "ofar", "UN", "ADV+2", 0.1,
            telemetry=TelemetryConfig(interval=100),
        )
        both = fig6_transient.settle_crosscheck(res, tail=200)
        assert set(both) == {"settle_latency", "settle_util"}
        # The telemetered run is the same simulation (never perturbs).
        assert res.series == plain.series


class TestFig7:
    def test_patterns_deduped(self):
        assert fig7_bursts.patterns(2).count("ADV+2") == 1
        assert "ADV+3" in fig7_bursts.patterns(3)

    def test_normalization(self):
        table = fig7_bursts.run(TINY, packets_per_node=2)
        for row in table.rows:
            assert row["pb_norm"] == 1.0
            assert row["ofar_norm"] > 0
        assert fig7_bursts.ofar_speedup(table) > 0


class TestFig8:
    def test_variants_present(self):
        table = fig8_ring.run(TINY, loads=[0.2], patterns=("UN",))
        row = table.rows[0]
        assert "physical_thr" in row and "embedded_thr" in row
        # §VII: the implementations perform equivalently.
        assert abs(row["physical_thr"] - row["embedded_thr"]) < 0.05


class TestFig9:
    def test_reduced_config(self):
        cfg = fig9_reduced_vcs.reduced_config(TINY)
        assert (cfg.local_vcs, cfg.global_vcs) == (2, 1)
        assert cfg.escape == "embedded"

    def test_run(self):
        table = fig9_reduced_vcs.run(TINY, loads=[0.2], patterns=("UN",))
        assert {"reduced_thr", "full_thr"} <= set(table.columns)
