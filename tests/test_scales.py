"""Cross-scale sanity: the topology laws hold at every h we can build,
and the simulator works end to end at the degenerate and larger sizes."""

import pytest

from repro.analysis.bounds import local_link_advh_bound, min_adversarial_bound
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.network.network import Network
from repro.topology.dragonfly import Dragonfly


class TestDegenerateH1:
    """h=1: 3 groups, 6 routers, 6 nodes — the smallest dragonfly."""

    def test_topology(self):
        topo = Dragonfly(1)
        assert topo.num_groups == 3
        assert topo.num_routers == 6
        assert topo.num_nodes == 6
        assert topo.ports_per_router == 3  # 1 node + 1 local + 1 global

    def test_min_routes_everywhere(self):
        topo = Dragonfly(1)
        for src in topo.nodes():
            for dst in topo.nodes():
                if src != dst:
                    assert topo.min_distance(src, dst) <= 3

    @pytest.mark.parametrize("routing", ["min", "val", "ofar"])
    def test_delivery(self, routing):
        cfg = SimulationConfig.small(h=1, routing=routing)
        sim = Simulator(cfg)
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    sim.create_packet(src, dst)
        sim.run_until_drained(200_000)
        assert sim.network.ejected_packets == 30


class TestLargerScales:
    def test_h4_network_constructs(self):
        cfg = SimulationConfig.small(h=4, routing="ofar", escape="embedded")
        net = Network(cfg)
        assert net.topo.num_groups == 33
        assert net.topo.num_routers == 264
        assert net.topo.num_nodes == 1056
        assert len(net.routers) == 264
        # Every router has exactly one embedded ring hop.
        assert all(len(hops) == 1 for hops in net.escape_hops)

    def test_h4_short_simulation(self):
        cfg = SimulationConfig.small(h=4, routing="ofar")
        from repro.engine.runner import run_spec

        pt = run_spec(RunSpec(cfg, "UN", 0.2, warmup=200, measure=200))
        assert pt.throughput == pytest.approx(0.2, abs=0.04)

    def test_paper_h6_topology_constructs(self):
        """The full §V network (no simulation — construction only)."""
        cfg = SimulationConfig.paper(routing="ofar")
        net = Network(cfg)
        assert net.topo.num_nodes == 5256
        assert net.topo.num_routers == 876
        assert net.ring is not None
        assert len(net.ring) == 876

    def test_h16_topology_math(self):
        """PERCS-class scale: pure closed forms, instant."""
        topo = Dragonfly(16)
        assert topo.num_nodes == 4 * 16**4 + 2 * 16**2
        assert topo.ports_per_router == 63  # 4h - 1


class TestLawsAcrossScales:
    @pytest.mark.parametrize("h", [2, 3])
    def test_min_adv_collapse_follows_law(self, h):
        """MIN under ADV saturates at ~1/(2h^2) x allocator efficiency
        at every size — the law, not an artifact of one h."""
        cfg = SimulationConfig.small(h=h, routing="min")
        pt = run_spec(RunSpec(cfg, "ADV+1", 0.4, warmup=600, measure=600))
        bound = min_adversarial_bound(h)
        assert pt.throughput <= bound * 1.3
        assert pt.throughput >= bound * 0.4

    @pytest.mark.parametrize("h", [2, 3])
    def test_ofar_beats_local_bound_at_every_h(self, h):
        cfg = SimulationConfig.small(h=h, routing="ofar")
        pt = run_spec(RunSpec(cfg, f"ADV+{h}", 0.45, warmup=800, measure=800))
        assert pt.throughput > local_link_advh_bound(h) * (1.05 if h > 2 else 0.8)
