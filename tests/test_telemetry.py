"""Tests for the in-run telemetry subsystem.

The two contracts under test (see repro/telemetry/sampler.py):
zero cost when off, and observation never perturbs — plus window
semantics, the ring-buffer bound, JSONL/CSV round-trips, and the
orchestrator integration.
"""

import json
import math

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import (
    _pattern_rng,
    run_spec,
    run_spec_with_telemetry,
    run_transient,
)
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.telemetry import (
    BufferStats,
    ClassStats,
    TelemetryConfig,
    TelemetrySampler,
    TelemetrySeries,
)
from repro.telemetry.export import from_jsonl, read_jsonl, to_csv, write_jsonl
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def loaded_sim(routing="min", pattern="UN", load=0.2, h=2, seed=3):
    cfg = SimulationConfig.small(h=h, routing=routing, seed=seed)
    sim = Simulator(cfg)
    topo = sim.network.topo
    p = make_pattern(topo, _pattern_rng(cfg, 4), pattern)
    sim.generator = BernoulliTraffic(p, load, cfg.packet_size, topo.num_nodes, 31)
    return sim


def spec(routing="ofar", **kw):
    base = dict(
        config=SimulationConfig.small(h=2, routing=routing, seed=3),
        pattern_spec="ADV+2",
        load=0.25,
        warmup=200,
        measure=300,
    )
    base.update(kw)
    return RunSpec(**base)


class TestConfig:
    def test_defaults_and_validation(self):
        cfg = TelemetryConfig()
        assert cfg.interval == 100 and cfg.capacity == 4096 and not cfg.per_link
        with pytest.raises(ValueError):
            TelemetryConfig(interval=0)
        with pytest.raises(ValueError):
            TelemetryConfig(capacity=0)

    def test_json_round_trip(self):
        cfg = TelemetryConfig(interval=50, capacity=7, per_link=True)
        assert TelemetryConfig.from_jsonable(cfg.to_jsonable()) == cfg

    def test_unknown_keys_rejected(self):
        data = TelemetryConfig().to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError):
            TelemetryConfig.from_jsonable(data)


class TestStats:
    def test_class_stats_of_empty(self):
        s = ClassStats.of([])
        assert s.count == 0 and s.mean == 0.0 and s.p99 == 0.0

    def test_class_stats_of_values(self):
        s = ClassStats.of([0.4, 0.1, 0.3, 0.2])
        assert s.count == 4 and s.mean == 0.25 and s.maximum == 0.4
        assert ClassStats.from_jsonable(s.to_jsonable()) == s

    def test_buffer_stats_histogram(self):
        s = BufferStats.of([0.0, 0.05, 0.95, 1.0])
        assert s.count == 4 and s.maximum == 1.0
        assert sum(s.hist) == 4
        assert s.hist[0] == 2  # the two near-empty buffers
        assert s.hist[-1] == 2  # full fills clamp into the last bin
        assert BufferStats.from_jsonable(s.to_jsonable()) == s


class TestLifecycle:
    def test_zero_cost_off_default(self):
        sim = loaded_sim()
        assert sim.telemetry is None  # the only engine-side state
        sim.run(50)
        assert sim.telemetry is None

    def test_attach_detach_restores_engine_state(self):
        sim = loaded_sim()
        orig_hook = sim.network.on_eject
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        assert sim.telemetry is sampler
        assert sim.network.on_eject != orig_hook
        sampler.detach()
        assert sim.telemetry is None
        assert sim.network.on_eject == orig_hook

    def test_one_lifecycle_per_sampler(self):
        sim = loaded_sim()
        sampler = TelemetrySampler(sim)
        sampler.attach()
        with pytest.raises(RuntimeError, match="already attached"):
            sampler.attach()
        sampler.finish()
        with pytest.raises(RuntimeError):
            sampler.attach()

    def test_one_sampler_per_simulator(self):
        sim = loaded_sim()
        TelemetrySampler(sim).attach()
        with pytest.raises(RuntimeError, match="already has a telemetry sampler"):
            TelemetrySampler(sim).attach()

    def test_context_manager(self):
        sim = loaded_sim()
        with TelemetrySampler(sim, TelemetryConfig(interval=10)) as sampler:
            sim.run(30)
        assert sim.telemetry is None
        assert len(sampler.finish().samples) == 3


class TestWindowSemantics:
    def test_sample_cycles_and_window_width(self):
        sim = loaded_sim()
        sim.run(25)  # attach mid-run: windows count from the attach cycle
        c0 = sim.cycle
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        sim.run(30)
        series = sampler.finish()
        assert [s.cycle for s in series.samples] == [c0 + 9, c0 + 19, c0 + 29]
        assert all(s.window == 10 for s in series.samples)
        assert series.start_cycle == c0

    def test_final_partial_window(self):
        sim = loaded_sim()
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        sim.run(25)
        series = sampler.finish()
        assert [s.window for s in series.samples] == [10, 10, 5]
        assert series.samples[-1].cycle == sim.cycle - 1

    def test_no_partial_when_windows_align(self):
        sim = loaded_sim()
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        sim.run(20)
        series = sampler.finish()
        assert [s.window for s in series.samples] == [10, 10]

    def test_deltas_sum_to_run_totals(self):
        sim = loaded_sim(load=0.3)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=25))
        sampler.attach()
        sim.run(200)
        series = sampler.finish()
        net = sim.network
        assert sum(s.created for s in series.samples) == sim.created_packets
        assert sum(s.injected for s in series.samples) == net.injected_packets
        assert sum(s.ejected for s in series.samples) == net.ejected_packets

    def test_ring_buffer_drops_oldest(self):
        sim = loaded_sim()
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10, capacity=3))
        sampler.attach()
        sim.run(80)  # 8 full windows into a 3-sample buffer
        series = sampler.finish()
        assert len(series.samples) == 3
        assert series.dropped == 5
        assert [s.cycle for s in series.samples] == [59, 69, 79]  # newest kept


class TestSampleContent:
    def test_classes_and_latency_digest(self):
        sim = loaded_sim(routing="ofar", pattern="ADV+2", load=0.3)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=50))
        sampler.attach()
        sim.run(400)
        series = sampler.finish()
        last = series.samples[-1]
        assert set(last.link_util) == {"local", "global", "ring"}
        assert "injection" in last.buffer_fill
        assert 0.0 <= last.link_util["local"].p99 <= 1.0
        assert last.ejected > 0
        assert last.latency_mean > 0
        assert last.latency_p50 <= last.latency_p99
        assert last.injection_backlog >= last.injection_backlog_max >= 0

    def test_nan_rates_when_nothing_ejected(self):
        sim = loaded_sim(load=0.0)  # no traffic at all
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        sim.run(10)
        s = sampler.finish().samples[0]
        assert math.isnan(s.latency_mean) and math.isnan(s.misroute_rate_local)

    def test_per_link_detail(self):
        sim = loaded_sim(routing="min", pattern="ADV+1", load=0.3)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=50, per_link=True))
        sampler.attach()
        sim.run(200)
        series = sampler.finish()
        s = series.samples[-1]
        topo = sim.network.topo
        assert len(s.router_util["local"]) == topo.num_routers
        assert len(s.group_util) == topo.num_groups
        assert all(len(row) == topo.num_groups for row in s.group_util)
        # A router's class mean never exceeds the class max over channels.
        assert max(s.router_util["local"]) <= s.link_util["local"].maximum + 1e-12

    def test_series_accessors(self):
        sim = loaded_sim(load=0.2)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=20))
        sampler.attach()
        sim.run(60)
        series = sampler.finish()
        p99 = series.link_p99("local")
        assert [c for c, _ in p99] == [s.cycle for s in series.samples]
        backlog = series.series(lambda s: float(s.injection_backlog))
        assert len(backlog) == len(series.samples)


class TestDeterminism:
    """The perturbation-free contract, at test scale.  The full-grid
    version is ``scripts/determinism_fingerprint.py --telemetry``."""

    def test_loadpoint_byte_identical_with_sampler(self):
        s = spec()
        plain = run_spec(s)
        observed, series = run_spec_with_telemetry(
            s, TelemetryConfig(interval=50, per_link=True)
        )
        assert series is not None and series.samples
        assert observed.to_json() == plain.to_json()  # byte-for-byte

    def test_spec_field_and_override(self):
        tcfg = TelemetryConfig(interval=50)
        s = spec(telemetry=tcfg)
        point, series = run_spec_with_telemetry(s)
        assert series is not None and series.config == tcfg
        assert point.to_json() == run_spec(s).to_json()

    def test_no_config_means_plain_run(self):
        point, series = run_spec_with_telemetry(spec())
        assert series is None
        assert point == run_spec(spec())


class TestExport:
    def make_series(self, **kw):
        sim = loaded_sim(routing="ofar", pattern="ADV+2", load=0.25)
        cfg = TelemetryConfig(**{"interval": 40, **kw})
        sampler = TelemetrySampler(sim, cfg)
        sampler.attach()
        sim.run(200)
        return sampler.finish()

    def test_jsonl_round_trip_exact(self):
        series = self.make_series(per_link=True)
        text = series.to_jsonl()
        back = from_jsonl(text)
        assert back.config == series.config
        assert back.start_cycle == series.start_cycle
        assert back.dropped == series.dropped
        assert [s.to_jsonable() for s in back.samples] == [
            s.to_jsonable() for s in series.samples
        ]
        assert back.to_jsonl() == text  # fixpoint

    def test_jsonl_nan_as_null(self):
        sim = loaded_sim(load=0.0)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=10))
        sampler.attach()
        sim.run(10)
        series = sampler.finish()
        text = series.to_jsonl()
        assert "NaN" not in text
        back = TelemetrySeries.from_jsonl(text)
        assert math.isnan(back.samples[0].latency_mean)

    def test_jsonl_header_validation(self):
        with pytest.raises(ValueError, match="empty"):
            from_jsonl("")
        with pytest.raises(ValueError, match="bad header"):
            from_jsonl('{"kind": "something-else"}\n')
        header = json.dumps({
            "format": 999, "kind": "telemetry-series",
            "config": TelemetryConfig().to_jsonable(),
            "start_cycle": 0, "dropped": 0, "samples": 0,
        })
        with pytest.raises(ValueError, match="format"):
            from_jsonl(header + "\n")

    def test_jsonl_truncation_detected(self):
        series = self.make_series()
        lines = series.to_jsonl().splitlines()
        truncated = "\n".join(lines[:-1]) + "\n"  # drop the last sample
        with pytest.raises(ValueError, match="truncated"):
            from_jsonl(truncated)

    def test_csv_shape_and_nan_cells(self):
        series = self.make_series()
        text = to_csv(series)
        lines = text.strip().splitlines()
        header = lines[0].split(",")
        assert lines[0].startswith("cycle,window,")
        assert "local_util_p99" in header and "injection_fill_mean" in header
        assert len(lines) == 1 + len(series.samples)
        assert all(len(ln.split(",")) == len(header) for ln in lines[1:])
        # NaN renders as an empty cell, not "nan".
        assert "nan" not in text.lower()

    def test_write_and_read_files(self, tmp_path):
        series = self.make_series(per_link=True)
        path = tmp_path / "sub" / "series.jsonl"
        write_jsonl(series, path)  # creates parents
        back = read_jsonl(path)
        assert back.to_jsonl() == series.to_jsonl()
        assert not list(path.parent.glob("*.tmp"))  # atomic: no temp debris
        csv_path = tmp_path / "series.csv"
        series.write_csv(csv_path)
        assert csv_path.read_text() == series.to_csv()


class TestTransientTelemetry:
    def test_covers_switch_and_settles(self):
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=13)
        result = run_transient(
            cfg, "UN", "ADV+2", 0.2, warmup=300, post=300,
            drain_margin=300, bucket=50,
            telemetry=TelemetryConfig(interval=50),
        )
        series = result.telemetry
        assert series is not None and series.start_cycle == 0
        cycles = [s.cycle for s in series.samples]
        # Samples on both sides of the switch: the spike is in-series.
        assert cycles[0] < result.switch_cycle < cycles[-1]

    def test_without_config_no_series(self):
        cfg = SimulationConfig.small(h=2, routing="min", seed=13)
        result = run_transient(
            cfg, "UN", "UN", 0.1, warmup=100, post=100,
            drain_margin=100, bucket=50,
        )
        assert result.telemetry is None


class TestOrchestratorTelemetry:
    def make(self, tmp_path, **kw):
        from repro.analysis.store import ResultStore
        from repro.engine.orchestrator import Orchestrator

        store = ResultStore(tmp_path / "store")
        return store, Orchestrator(workers=0, store=store, **kw)

    def test_series_persisted_per_fingerprint(self, tmp_path):
        store, orch = self.make(
            tmp_path, telemetry=TelemetryConfig(interval=50)
        )
        s = spec()
        (point,) = orch.run_points([s])
        fp = s.fingerprint()
        path = store.root / "telemetry" / fp[:2] / f"{fp}.jsonl"
        assert path.exists()
        series = read_jsonl(path)
        assert series.samples
        assert point.to_json() == run_spec(s).to_json()

    def test_cache_hit_skips_series(self, tmp_path):
        store, orch = self.make(tmp_path, telemetry=TelemetryConfig(interval=50))
        s = spec()
        orch.run_points([s])
        fp = s.fingerprint()
        path = store.root / "telemetry" / fp[:2] / f"{fp}.jsonl"
        path.unlink()
        orch.run_points([s])  # cached: executes nothing
        assert not path.exists()

    def test_telemetry_field_not_in_fingerprint(self, tmp_path):
        store, orch = self.make(tmp_path)
        plain = spec()
        with_t = spec(telemetry=TelemetryConfig(interval=50))
        assert with_t.fingerprint() == plain.fingerprint()
        orch.run_points([plain])
        # The telemetered spec is a cache *hit* — same identity.
        (point,) = orch.run_points([with_t])
        assert point == run_spec(plain)
