"""Tests for the telemetry heatmap/settle renderers."""

import pytest

from repro.analysis.heatmap import (
    GLYPHS,
    _glyph,
    group_matrix,
    render_group_heatmap,
    render_router_heatmap,
    render_series,
    settle_from_utilization,
)
from repro.telemetry import (
    BufferStats,
    ClassStats,
    TelemetryConfig,
    TelemetrySample,
    TelemetrySeries,
)


def mk_sample(cycle, local_p99=0.1, router_util=None, group_util=None, window=10):
    """A synthetic sample: only the fields the renderers read matter."""
    stats = ClassStats(count=4, mean=local_p99 / 2, maximum=local_p99, p99=local_p99)
    return TelemetrySample(
        cycle=cycle, window=window,
        link_util={"local": stats, "global": stats},
        buffer_fill={"injection": BufferStats.of([0.0])},
        injection_backlog=0, injection_backlog_max=0,
        created=0, injected=0, ejected=0,
        ring_packets=0, ring_entries=0, ring_moves=0, bubble_stalls=0,
        misroutes_local=0, misroutes_global=0,
        misroute_rate_local=0.0, misroute_rate_global=0.0,
        latency_mean=10.0, latency_p50=10.0, latency_p99=12.0,
        router_util=router_util, group_util=group_util,
    )


def mk_series(samples, interval=10):
    return TelemetrySeries(
        config=TelemetryConfig(interval=interval, per_link=True),
        start_cycle=samples[0].cycle - samples[0].window + 1 if samples else 0,
        samples=samples,
    )


class TestGlyph:
    def test_ramp_endpoints(self):
        assert _glyph(0.0, 1.0) == " "
        assert _glyph(1.0, 1.0) == GLYPHS[-1]

    def test_monotone(self):
        levels = [GLYPHS.index(_glyph(v / 10, 1.0)) for v in range(11)]
        assert levels == sorted(levels)

    def test_degenerate(self):
        assert _glyph(0.5, 0.0) == " "  # vmax 0
        assert _glyph(float("nan"), 1.0) == " "


class TestRouterHeatmap:
    def test_rows_and_mark(self):
        samples = [
            mk_sample(9, router_util={"local": [0.0, 0.5]}),
            mk_sample(19, router_util={"local": [0.1, 0.9]}),
            mk_sample(29, router_util={"local": [0.0, 0.2]}),
        ]
        text = render_router_heatmap(mk_series(samples), "local", mark_cycle=15)
        lines = text.splitlines()
        assert lines[1].startswith("r0") and lines[2].startswith("r1")
        # The '|' sits before the first window ending at/after cycle 15.
        row0 = lines[1].split(" ", 1)[1]
        assert row0[1] == "|"
        assert "cycles 9..29" in lines[-1]
        assert "'|' = cycle 15" in lines[-1]
        # The hot router's row is darker than the cold one's.
        row1 = lines[2].split(" ", 1)[1]
        assert max(GLYPHS.index(c) for c in row1 if c != "|") > max(
            GLYPHS.index(c) for c in row0 if c != "|"
        )

    def test_requires_per_link(self):
        series = mk_series([mk_sample(9)])  # router_util=None
        with pytest.raises(ValueError, match="per_link"):
            render_router_heatmap(series)

    def test_unknown_kind(self):
        series = mk_series([mk_sample(9, router_util={"local": [0.1]})])
        with pytest.raises(ValueError, match="no 'ring' links"):
            render_router_heatmap(series, "ring")


class TestGroupMatrix:
    def test_mean_over_range(self):
        samples = [
            mk_sample(9, router_util={"local": [0.0]},
                      group_util=[[0.0, 0.2], [0.4, 0.0]]),
            mk_sample(19, router_util={"local": [0.0]},
                      group_util=[[0.0, 0.6], [0.0, 0.0]]),
        ]
        series = mk_series(samples)
        full = group_matrix(series)
        assert full[0][1] == pytest.approx(0.4)
        assert full[1][0] == pytest.approx(0.2)
        early = group_matrix(series, end=10)
        assert early[0][1] == pytest.approx(0.2)

    def test_empty_range_raises(self):
        series = mk_series([
            mk_sample(9, router_util={"local": [0.0]}, group_util=[[0.0]]),
        ])
        with pytest.raises(ValueError, match="no per-link samples"):
            group_matrix(series, start=100)

    def test_render_header(self):
        series = mk_series([
            mk_sample(9, router_util={"local": [0.0]},
                      group_util=[[0.0, 0.5], [0.5, 0.0]]),
        ])
        text = render_group_heatmap(series)
        assert "group→group" in text
        assert text.splitlines()[2].startswith("g0")


class TestSettle:
    def test_settles_after_spike(self):
        # Spike at the switch (cycle 20), settled from cycle 40 on.
        values = [0.1, 0.1, 0.9, 0.6, 0.12, 0.1, 0.11, 0.1]
        samples = [mk_sample(10 * (i + 1) - 1, v) for i, v in enumerate(values)]
        settled = settle_from_utilization(mk_series(samples), after=20)
        assert settled == 49  # first sample back within 1.5x the tail mean

    def test_never_settles(self):
        values = [0.1, 0.9, 0.9, 0.1, 0.1, 0.9]  # ends high vs tail mean? no:
        # tail mean = (0.1+0.1+0.9)/3 = 0.3667, target 0.55; last value 0.9
        samples = [mk_sample(10 * (i + 1) - 1, v) for i, v in enumerate(values)]
        assert settle_from_utilization(mk_series(samples), after=0) is None

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="tail"):
            settle_from_utilization(mk_series([mk_sample(9)]), after=0)

    def test_custom_stat(self):
        samples = [mk_sample(10 * (i + 1) - 1, 0.1) for i in range(4)]
        samples[1].injection_backlog = 50
        settled = settle_from_utilization(
            mk_series(samples), after=0,
            stat=lambda s: float(s.injection_backlog), factor=2.0,
        )
        assert settled == 29  # backlog spike clears after sample 1


class TestSparkline:
    def test_empty(self):
        assert "(no samples)" in render_series([], "x")

    def test_mark_and_max(self):
        text = render_series([(0, 0.0), (10, 1.0), (20, 0.5)], "util", mark_cycle=10)
        assert "max=1.000" in text
        body = text[text.index("[") + 1:text.index("]")]
        assert body[1] == "|"  # mark before the first point at/after cycle 10
        assert body[2] == GLYPHS[-1]


class TestOnRealRun:
    def test_end_to_end_render(self):
        """A tiny real transient renders without error and shows the mark."""
        from repro.engine.config import SimulationConfig
        from repro.engine.runner import run_transient

        result = run_transient(
            SimulationConfig.small(h=2, routing="min", seed=5),
            "UN", "ADV+1", 0.15, warmup=200, post=200,
            drain_margin=200, bucket=50,
            telemetry=TelemetryConfig(interval=50, per_link=True),
        )
        series = result.telemetry
        text = render_router_heatmap(series, "local", mark_cycle=result.switch_cycle)
        assert f"'|' = cycle {result.switch_cycle}" in text
        num_routers = len(series.samples[0].router_util["local"])
        assert len(text.splitlines()) == 2 + num_routers
        render_group_heatmap(series, start=result.switch_cycle)
