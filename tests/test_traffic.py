"""Tests for traffic patterns and injection processes."""

import random

import pytest

from repro.topology.dragonfly import Dragonfly
from repro.traffic.generators import BernoulliTraffic, BurstTraffic, TransientTraffic
from repro.traffic.patterns import (
    AdversarialLocalPattern,
    AdversarialPattern,
    MixPattern,
    UniformPattern,
    make_pattern,
)


@pytest.fixture
def topo():
    return Dragonfly(2)


@pytest.fixture
def rng():
    return random.Random(42)


class TestUniform:
    def test_never_self(self, topo, rng):
        p = UniformPattern(topo, rng)
        for src in (0, 5, topo.num_nodes - 1):
            for _ in range(200):
                assert p.dest(src) != src

    def test_covers_all_destinations(self, topo, rng):
        p = UniformPattern(topo, rng)
        seen = {p.dest(0) for _ in range(5000)}
        assert seen == set(range(1, topo.num_nodes))

    def test_includes_own_group(self, topo, rng):
        """The paper's UN includes the source group."""
        p = UniformPattern(topo, rng)
        own_group = {p.dest(0) for _ in range(2000)} & set(topo.group_nodes(0))
        assert own_group  # some destinations in group 0

    def test_roughly_uniform(self, topo, rng):
        p = UniformPattern(topo, rng)
        counts = {}
        n = 20_000
        for _ in range(n):
            d = p.dest(0)
            counts[d] = counts.get(d, 0) + 1
        expected = n / (topo.num_nodes - 1)
        for c in counts.values():
            assert 0.5 * expected < c < 1.7 * expected


class TestAdversarial:
    def test_targets_offset_group(self, topo, rng):
        p = AdversarialPattern(topo, rng, offset=2)
        for src in range(0, topo.num_nodes, 7):
            dst = p.dest(src)
            expected = (topo.node_group(src) + 2) % topo.num_groups
            assert topo.node_group(dst) == expected

    def test_wraps_around(self, topo, rng):
        p = AdversarialPattern(topo, rng, offset=3)
        src = next(iter(topo.group_nodes(topo.num_groups - 1)))
        assert topo.node_group(p.dest(src)) == 2

    def test_spreads_within_group(self, topo, rng):
        p = AdversarialPattern(topo, rng, offset=1)
        dsts = {p.dest(0) for _ in range(2000)}
        assert dsts == set(topo.group_nodes(1))

    def test_invalid_offsets(self, topo, rng):
        with pytest.raises(ValueError):
            AdversarialPattern(topo, rng, 0)
        with pytest.raises(ValueError):
            AdversarialPattern(topo, rng, topo.num_groups)

    def test_name(self, topo, rng):
        assert AdversarialPattern(topo, rng, 2).name == "ADV+2"


class TestAdversarialLocal:
    def test_targets_next_router_same_group(self, topo, rng):
        p = AdversarialLocalPattern(topo, rng)
        for src in range(0, topo.num_nodes, 5):
            dst = p.dest(src)
            src_r, dst_r = topo.node_router(src), topo.node_router(dst)
            assert topo.router_group(src_r) == topo.router_group(dst_r)
            assert topo.router_index(dst_r) == (topo.router_index(src_r) + 1) % topo.a


class TestMix:
    def test_rates_respected(self, topo, rng):
        un = UniformPattern(topo, rng)
        adv = AdversarialPattern(topo, rng, 1)
        mix = MixPattern(topo, rng, [(un, 0.8), (adv, 0.2)])
        # Component choice is observable through the destination group:
        # ADV+1 from group 0 always lands in group 1.
        n = 10_000
        g1_direct = sum(
            1 for _ in range(n) if topo.node_group(mix.dest(0)) == 1
        )
        # UN also lands in group 1 sometimes (1/9 of the time at h=2).
        expected = n * (0.2 + 0.8 / 9)
        assert abs(g1_direct - expected) < 0.15 * expected

    def test_empty_mix_rejected(self, topo, rng):
        with pytest.raises(ValueError):
            MixPattern(topo, rng, [])

    def test_zero_weights_rejected(self, topo, rng):
        un = UniformPattern(topo, rng)
        with pytest.raises(ValueError):
            MixPattern(topo, rng, [(un, 0.0)])


class TestMakePattern:
    def test_specs(self, topo, rng):
        assert make_pattern(topo, rng, "UN").name == "UN"
        assert make_pattern(topo, rng, "un").name == "UN"
        assert make_pattern(topo, rng, "ADV+3").name == "ADV+3"
        assert make_pattern(topo, rng, "ADV-LOCAL").name == "ADV-LOCAL"
        for mix in ("MIX1", "MIX2", "MIX3"):
            assert make_pattern(topo, rng, mix).name == mix

    def test_unknown_spec(self, topo, rng):
        with pytest.raises(ValueError):
            make_pattern(topo, rng, "BITREV")


class TestBernoulli:
    def test_rate_matches_load(self, topo, rng):
        load = 0.4
        gen = BernoulliTraffic(UniformPattern(topo, rng), load, 8, topo.num_nodes, 3)
        total = sum(len(list(gen.packets_for_cycle(c))) for c in range(2000))
        expected = 2000 * topo.num_nodes * load / 8
        assert abs(total - expected) < 0.1 * expected

    def test_zero_load(self, topo, rng):
        gen = BernoulliTraffic(UniformPattern(topo, rng), 0.0, 8, topo.num_nodes, 3)
        assert list(gen.packets_for_cycle(0)) == []

    def test_invalid_load(self, topo, rng):
        with pytest.raises(ValueError):
            BernoulliTraffic(UniformPattern(topo, rng), 1.5, 8, topo.num_nodes, 3)

    def test_never_finished(self, topo, rng):
        gen = BernoulliTraffic(UniformPattern(topo, rng), 0.1, 8, topo.num_nodes, 3)
        assert not gen.finished(10_000)


class TestTransient:
    def test_pattern_switch(self, topo, rng):
        un = UniformPattern(topo, rng)
        adv = AdversarialPattern(topo, random.Random(1), 1)
        gen = TransientTraffic([(0, un), (100, adv)], 0.5, 8, topo.num_nodes, 5)
        assert gen.pattern_at(0) is un
        assert gen.pattern_at(99) is un
        assert gen.pattern_at(100) is adv
        assert gen.pattern_at(10_000) is adv

    def test_generated_destinations_follow_phase(self, topo, rng):
        adv1 = AdversarialPattern(topo, rng, 1)
        adv2 = AdversarialPattern(topo, random.Random(1), 2)
        gen = TransientTraffic([(0, adv1), (50, adv2)], 1.0, 8, topo.num_nodes, 5)
        for cycle, off in ((0, 1), (200, 2)):
            for src, dst in gen.packets_for_cycle(cycle):
                delta = (topo.node_group(dst) - topo.node_group(src)) % topo.num_groups
                assert delta == off

    def test_must_start_at_zero(self, topo, rng):
        with pytest.raises(ValueError):
            TransientTraffic([(5, UniformPattern(topo, rng))], 0.5, 8, 72, 1)


class TestBurst:
    def test_emits_once(self, topo, rng):
        gen = BurstTraffic(UniformPattern(topo, rng), 3, topo.num_nodes)
        first = list(gen.packets_for_cycle(0))
        assert len(first) == 3 * topo.num_nodes
        assert gen.total_packets == 3 * topo.num_nodes
        assert list(gen.packets_for_cycle(1)) == []
        assert gen.finished(1)

    def test_every_node_contributes(self, topo, rng):
        gen = BurstTraffic(UniformPattern(topo, rng), 2, topo.num_nodes)
        srcs = [s for s, _ in gen.packets_for_cycle(0)]
        assert all(srcs.count(n) == 2 for n in range(topo.num_nodes))

    def test_invalid_count(self, topo, rng):
        with pytest.raises(ValueError):
            BurstTraffic(UniformPattern(topo, rng), 0, topo.num_nodes)

    def test_finished_contract(self, topo, rng):
        """Regression for the drain-loop contract: not finished before
        the backlog is handed off, permanently finished right after, and
        never another packet once finished (TrafficGenerator.finished).
        """
        gen = BurstTraffic(UniformPattern(topo, rng), 2, topo.num_nodes)
        assert not gen.finished(0)  # backlog not yet handed to the sim
        gen.packets_for_cycle(0)
        # Monotone: True at the hand-off cycle and every later one, even
        # if queried out of order or repeatedly.
        for cycle in (0, 5, 1, 10_000, 0):
            assert gen.finished(cycle)
            assert list(gen.packets_for_cycle(cycle + 1)) == []
            assert gen.finished(cycle)  # emptiness probe doesn't reset it
