"""Tests for link-fault injection (§VII reliability).

OFAR's in-transit misrouting doubles as fault tolerance: traffic routes
around a failed link, while deterministic MIN stalls on it.
"""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import DeadlockError, Simulator
from repro.topology.dragonfly import PortKind


def make_sim(routing="ofar", **overrides):
    return Simulator(SimulationConfig.small(h=2, routing=routing, **overrides))


class TestFailLink:
    def test_both_directions_fail(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.fail_link(0, port)
        assert net.routers[0].out[port].failed
        peer, peer_port = net.topo.neighbor(0, port)
        assert net.routers[peer].out[peer_port].failed
        assert len(net.failed_links()) == 2

    def test_failed_channel_reports_full(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.fail_link(0, port)
        ch = net.routers[0].out[port]
        assert ch.occupancy_fraction() == 1.0
        assert not net.routers[0].out_port_free(port, 0)

    def test_node_port_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.network.fail_link(0, 0)

    def test_ring_link_failure_disables_ring(self):
        sim = make_sim(escape="embedded")
        net = sim.network
        rid = 0
        port = net.ring_specs[0].successor_port(rid)
        net.fail_link(rid, port)
        assert 0 in net.disabled_rings

    def test_physical_ring_port_failure(self):
        sim = make_sim(escape="physical")
        net = sim.network
        net.fail_link(0, net.topo.ring_port)
        assert 0 in net.disabled_rings


class TestRoutingAroundFaults:
    def test_ofar_delivers_around_failed_local_link(self):
        sim = make_sim("ofar")
        net = sim.network
        topo = net.topo
        # Fail the direct local link between routers 0 and 1, then send
        # node 0 -> node on router 1 (minimal route uses that link).
        port = topo.local_port(0, 1)
        net.fail_link(0, port)
        pkt = sim.create_packet(0, topo.p * 1)
        sim.run_until_drained(200_000)
        assert pkt.ejected_cycle > 0
        assert pkt.misroutes_local >= 1  # had to go around

    def test_ofar_delivers_around_failed_global_link(self):
        sim = make_sim("ofar")
        net = sim.network
        topo = net.topo
        dst = topo.num_nodes - 1
        # Fail the global link of the minimal route from group 0.
        owner_r, k = topo.group_route(0, topo.node_group(dst))
        net.fail_link(topo.router_id(0, owner_r), topo.global_port(k))
        pkt = sim.create_packet(0, dst)
        sim.run_until_drained(200_000)
        assert pkt.ejected_cycle > 0
        assert pkt.misroutes_global == 1  # detoured via another group

    def test_min_stalls_on_failed_link(self):
        sim = make_sim("min", deadlock_cycles=400)
        net = sim.network
        topo = net.topo
        port = topo.local_port(0, 1)
        net.fail_link(0, port)
        sim.create_packet(0, topo.p * 1)
        with pytest.raises(DeadlockError):
            sim.run(5_000)

    def test_ofar_bulk_traffic_with_faults(self):
        """Several failed links, random traffic: everything delivered."""
        sim = make_sim("ofar")
        net = sim.network
        topo = net.topo
        net.fail_link(0, topo.local_port(0, 1))
        net.fail_link(topo.router_id(1, 0), topo.global_port(0))
        rng = __import__("random").Random(5)
        for _ in range(60):
            s, d = rng.randrange(72), rng.randrange(72)
            if s != d:
                sim.create_packet(s, d)
        sim.run_until_drained(400_000)
        assert net.ejected_packets == sim.created_packets

    def test_two_rings_survive_ring_fault_under_load(self):
        """Fail a link carrying ring 0: with 2 embedded rings the escape
        guarantee survives and heavy traffic drains."""
        cfg = SimulationConfig.small(
            h=2, routing="ofar", escape="embedded", escape_rings=2,
            escape_patience=0,
            local_vcs=1, global_vcs=1, injection_vcs=1,
            local_buffer=16, global_buffer=16, injection_buffer=16,
        )
        sim = Simulator(cfg)
        net = sim.network
        rid = 4
        net.fail_link(rid, net.ring_specs[0].successor_port(rid))
        assert 0 in net.disabled_rings
        topo = net.topo
        rng = __import__("random").Random(9)
        npg = topo.p * topo.a
        for node in range(topo.num_nodes):
            g = node // npg
            for _ in range(3):
                sim.create_packet(
                    node, ((g + 2) % topo.num_groups) * npg + rng.randrange(npg)
                )
        sim.run_until_drained(1_000_000)
        assert net.ejected_packets == sim.created_packets


class TestFaultRepair:
    def test_fail_link_is_idempotent(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.fail_link(0, port)
        net.fail_link(0, port)  # double-fail must not double-count
        assert len(net.failed_links()) == 2  # both directions, once each

    def test_restore_link_clears_both_directions(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.fail_link(0, port)
        net.restore_link(0, port)
        assert not net.routers[0].out[port].failed
        peer, peer_port = net.topo.neighbor(0, port)
        assert not net.routers[peer].out[peer_port].failed
        assert net.failed_links() == []

    def test_restore_from_peer_side(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.fail_link(0, port)
        peer, peer_port = net.topo.neighbor(0, port)
        net.restore_link(peer, peer_port)  # repair named from the other end
        assert net.failed_links() == []

    def test_restore_is_idempotent_and_noop_on_healthy_link(self):
        sim = make_sim()
        net = sim.network
        port = net.topo.local_port(0, 1)
        net.restore_link(0, port)  # never failed: no-op
        net.fail_link(0, port)
        net.restore_link(0, port)
        net.restore_link(0, port)  # already repaired: no-op
        assert net.failed_links() == []

    def test_restore_node_port_rejected(self):
        sim = make_sim()
        with pytest.raises(ValueError):
            sim.network.restore_link(0, 0)

    def test_ring_reenabled_after_repair(self):
        sim = make_sim(escape="embedded")
        net = sim.network
        rid = 0
        port = net.ring_specs[0].successor_port(rid)
        net.fail_link(rid, port)
        assert 0 in net.disabled_rings
        net.restore_link(rid, port)
        assert 0 not in net.disabled_rings

    def test_ring_stays_disabled_while_other_fault_remains(self):
        sim = make_sim(escape="embedded")
        net = sim.network
        p0 = net.ring_specs[0].successor_port(0)
        p4 = net.ring_specs[0].successor_port(4)
        net.fail_link(0, p0)
        net.fail_link(4, p4)
        net.restore_link(0, p0)
        assert 0 in net.disabled_rings  # the second fault still cuts the ring
        net.restore_link(4, p4)
        assert 0 not in net.disabled_rings

    def test_explicitly_disabled_ring_not_resurrected_by_repair(self):
        # A ring turned off via disable_ring (ablation, not fault) must
        # NOT come back when a link repair touches it.
        sim = make_sim(escape="embedded")
        net = sim.network
        net.disable_ring(0)
        port = net.ring_specs[0].successor_port(0)
        net.fail_link(0, port)
        net.restore_link(0, port)
        assert 0 in net.disabled_rings

    def test_traffic_flows_again_after_repair(self):
        sim = make_sim("min")
        net = sim.network
        topo = net.topo
        port = topo.local_port(0, 1)
        net.fail_link(0, port)
        net.restore_link(0, port)
        pkt = sim.create_packet(0, topo.p * 1)
        sim.run_until_drained(200_000)
        assert pkt.ejected_cycle > 0
        assert pkt.misroutes_local == 0  # the direct link is usable again
