"""Tests for saturation analysis utilities."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.saturation import accepted_ratio, find_saturation, run_until_stable


def cfg(routing="min", **overrides):
    return SimulationConfig.small(h=2, routing=routing, **overrides)


class TestAcceptedRatio:
    def test_low_load_fully_accepted(self):
        r = accepted_ratio(cfg(), "UN", 0.1, warmup=400, measure=400)
        assert r == pytest.approx(1.0, abs=0.08)

    def test_overload_rejected(self):
        # MIN under ADV collapses to ~1/(2h^2); offered 0.5 mostly queues.
        r = accepted_ratio(cfg(), "ADV+2", 0.5, warmup=500, measure=500)
        assert r < 0.5

    def test_zero_load_invalid(self):
        with pytest.raises(ValueError):
            accepted_ratio(cfg(), "UN", 0.0)


class TestFindSaturation:
    def test_min_adversarial_saturates_low(self):
        sat = find_saturation(
            cfg(), "ADV+2", lo=0.05, hi=0.6, tolerance=0.05,
            warmup=400, measure=400,
        )
        assert sat < 0.25  # bounded by 1/(2h^2)=0.125 + slack

    def test_ofar_adversarial_saturates_high(self):
        sat = find_saturation(
            cfg("ofar"), "ADV+2", lo=0.1, hi=0.8, tolerance=0.05,
            warmup=400, measure=400,
        )
        assert sat > 0.3

    def test_ordering_matches_paper(self):
        """Saturation ladder under the worst pattern: OFAR > VAL."""
        kw = dict(lo=0.05, hi=0.8, tolerance=0.08, warmup=400, measure=400)
        sat_val = find_saturation(cfg("val"), "ADV+2", **kw)
        sat_ofar = find_saturation(cfg("ofar"), "ADV+2", **kw)
        assert sat_ofar > sat_val

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            find_saturation(cfg(), "UN", lo=0.5, hi=0.2)


class TestRunUntilStable:
    def test_converges_at_low_load(self):
        point = run_until_stable(cfg(), "UN", 0.15, window=400)
        assert point.throughput == pytest.approx(0.15, abs=0.03)

    def test_returns_point_even_if_noisy(self):
        point = run_until_stable(
            cfg("ofar"), "ADV+2", 0.5, window=300, rel_tol=0.001, max_windows=3
        )
        assert point.ejected_packets > 0

    def test_single_window_matches_run_spec(self):
        """The probe rides the shared RunSpec builder, not a private one.

        With one measurement window the convergence loop degenerates to
        exactly run_spec's warmup+measure protocol, so the LoadPoints
        must be bit-identical — a saturation probe at (config, pattern,
        load) observes the same trajectory as a sweep point there.
        (Regression: run_until_stable used to hand-build its simulator
        with different RNG salts and no per-source recording.)
        """
        from repro.engine.runner import run_spec
        from repro.engine.runspec import RunSpec

        config = cfg("ofar", seed=7)
        probe = run_until_stable(config, "UN", 0.15, window=400, max_windows=1)
        direct = run_spec(RunSpec(config, "UN", 0.15, warmup=400, measure=400))
        assert probe == direct

    def test_probe_records_per_source(self):
        """Shared-builder probes carry fairness stats like sweep points."""
        point = run_until_stable(cfg(), "UN", 0.15, window=400, max_windows=1)
        assert point.jain_index == point.jain_index  # not NaN
