"""Tests for the simulation loop: injection, draining, watchdog."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import DeadlockError, Simulator


def make_sim(routing="min", **overrides):
    return Simulator(SimulationConfig.small(h=2, routing=routing, **overrides))


class TestCreation:
    def test_create_packet_fields(self):
        sim = make_sim()
        pkt = sim.create_packet(3, 70)
        topo = sim.network.topo
        assert pkt.src == 3
        assert pkt.dst == 70
        assert pkt.dst_router == topo.node_router(70)
        assert pkt.dst_group == topo.node_group(70)
        assert pkt.src_group == topo.node_group(3)
        assert pkt.size == sim.config.packet_size

    def test_create_packet_rejects_self(self):
        with pytest.raises(ValueError):
            make_sim().create_packet(4, 4)

    def test_pids_unique(self):
        sim = make_sim()
        pids = {sim.create_packet(0, i + 1).pid for i in range(20)}
        assert len(pids) == 20


class TestInjectionSerialization:
    def test_one_packet_per_size_cycles(self):
        """The injection wire carries 1 phit/cycle: a node injects at
        most one packet every packet_size cycles."""
        sim = make_sim()
        for i in range(4):
            sim.create_packet(0, 30 + i)
        inj_cycles = []
        orig = sim.network.try_inject

        def spy(pkt, cycle):
            ok = orig(pkt, cycle)
            if ok:
                inj_cycles.append(cycle)
            return ok

        sim.network.try_inject = spy
        sim.run(40)
        assert inj_cycles == [0, 8, 16, 24]

    def test_source_queue_fifo(self):
        sim = make_sim()
        pkts = [sim.create_packet(0, 30 + i) for i in range(3)]
        sim.run(30)
        assert pkts[0].injected_cycle < pkts[1].injected_cycle < pkts[2].injected_cycle

    def test_injection_counts(self):
        sim = make_sim()
        sim.create_packet(0, 30)
        sim.run(5)
        assert sim.network.injected_packets == 1
        assert sim.metrics.injected_packets == 1
        assert sim.metrics.generated_packets == 1


class TestDraining:
    def test_run_until_drained(self):
        sim = make_sim()
        pkts = [sim.create_packet(i, 71 - i) for i in range(4)]
        end = sim.run_until_drained(100_000)
        assert all(p.ejected_cycle >= 0 for p in pkts)
        assert end >= max(p.ejected_cycle for p in pkts) - 1
        assert sim.outstanding_packets() == 0

    def test_drain_timeout(self):
        sim = make_sim()
        sim.create_packet(0, 71)
        with pytest.raises(TimeoutError):
            sim.run_until_drained(3)

    def test_drain_with_endless_generator_times_out(self):
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import UniformPattern
        import random

        sim = make_sim()
        sim.generator = BernoulliTraffic(
            UniformPattern(sim.network.topo, random.Random(1)),
            0.1, 8, sim.network.topo.num_nodes, 1,
        )
        with pytest.raises(TimeoutError):
            sim.run_until_drained(300)

    def test_drain_spans_finite_generator(self):
        """A trace-like generator active for many cycles drains fully."""
        from repro.traffic.trace import TraceEvent, TraceTraffic

        sim = make_sim()
        sim.generator = TraceTraffic(
            [TraceEvent(0, 0, 40), TraceEvent(150, 1, 41), TraceEvent(300, 2, 42)]
        )
        end = sim.run_until_drained(100_000)
        assert sim.network.ejected_packets == 3
        assert end > 300

    def test_empty_network_drains_immediately(self):
        sim = make_sim()
        assert sim.run_until_drained(10) == sim.cycle - 1

    def test_already_drained_returns_minus_one(self):
        """A fresh simulator has no last ejection: the sentinel is -1,
        not a stale ``cycle - 1`` that happens to coincide with it."""
        sim = make_sim()
        assert sim.run_until_drained(10) == -1
        assert sim.cycle == 0  # the loop body never ran

    def test_returns_exact_last_ejection_cycle(self):
        """The return value is the cycle of the last ejection event —
        not the cycle the loop noticed the network was empty."""
        sim = make_sim()
        pkts = [sim.create_packet(i, 71 - i) for i in range(4)]
        end = sim.run_until_drained(100_000)
        assert end == max(p.ejected_cycle for p in pkts)
        assert end == sim.network.last_eject_cycle

    def test_repeat_drain_keeps_completion_cycle(self):
        """Draining an already-drained simulator reports the previous
        completion cycle (credit flushing must not disturb it)."""
        sim = make_sim()
        sim.create_packet(3, 40)
        first = sim.run_until_drained(100_000)
        assert first > 0
        assert sim.run_until_drained(100) == first
        assert not sim.network.has_pending_events()


class TestWatchdog:
    def test_deadlock_detected_when_routing_stalls(self):
        """A routing algorithm that never issues requests must trip the
        watchdog once packets are stuck."""
        sim = make_sim(deadlock_cycles=50)
        sim.routing.route = lambda rt, p, v, pkt, c: None
        sim.create_packet(0, 71)
        with pytest.raises(DeadlockError) as exc:
            sim.run(500)
        assert exc.value.outstanding == 1

    def test_no_false_positive_on_idle(self):
        sim = make_sim(deadlock_cycles=50)
        sim.run(500)  # no traffic: watchdog must stay silent

    def test_long_latency_not_deadlock(self):
        """A quiet period shorter than the threshold is tolerated."""
        sim = make_sim(deadlock_cycles=5000)
        sim.create_packet(0, 71)
        sim.run_until_drained(100_000)


class TestWarmup:
    def test_warmup_resets_metrics(self):
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import UniformPattern
        import random

        sim = make_sim()
        sim.generator = BernoulliTraffic(
            UniformPattern(sim.network.topo, random.Random(1)),
            0.2, 8, sim.network.topo.num_nodes, 1,
        )
        sim.warm_up(200)
        assert sim.metrics.ejected_packets == 0
        assert sim.metrics.window_start == 200
        before = sim.network.ejected_packets
        assert before > 0  # traffic did flow during warm-up

    def test_deterministic_given_seed(self):
        """Two simulators with identical configs produce identical
        trajectories."""
        from repro.engine.runner import run_spec
        from repro.engine.runspec import RunSpec

        cfg = SimulationConfig.small(h=2, routing="ofar", seed=11)
        a = run_spec(RunSpec(cfg, "ADV+2", 0.3, warmup=200, measure=200))
        b = run_spec(RunSpec(cfg, "ADV+2", 0.3, warmup=200, measure=200))
        assert a.throughput == b.throughput
        assert a.avg_latency == b.avg_latency
        assert a.ejected_packets == b.ejected_packets

    def test_different_seeds_differ(self):
        from repro.engine.runner import run_spec
        from repro.engine.runspec import RunSpec

        cfg1 = SimulationConfig.small(h=2, routing="ofar", seed=11)
        cfg2 = SimulationConfig.small(h=2, routing="ofar", seed=12)
        a = run_spec(RunSpec(cfg1, "UN", 0.3, warmup=200, measure=200))
        b = run_spec(RunSpec(cfg2, "UN", 0.3, warmup=200, measure=200))
        assert (a.avg_latency, a.ejected_packets) != (b.avg_latency, b.ejected_packets)
