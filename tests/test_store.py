"""Tests for the content-addressed result store."""

import json

from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec


def spec(load=0.2, seed=3):
    return RunSpec(
        SimulationConfig.small(h=2, routing="min", seed=seed), "UN", load, 100, 100
    )


class TestResultStore:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        s = spec()
        assert store.get(s) is None
        assert s not in store
        point = run_spec(s)
        store.put(s, point, wall_time=0.1)
        assert s in store
        assert store.get(s) == point  # exact dataclass equality
        assert len(store) == 1
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_distinct_specs_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = spec(load=0.1), spec(load=0.2)
        store.put(a, run_spec(a))
        assert store.get(b) is None
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        path.write_text("{ not json")
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_foreign_spec_under_right_fingerprint_is_a_miss(self, tmp_path):
        """A fingerprint collision (or tampered entry) must not serve a
        point for a different simulation."""
        store = ResultStore(tmp_path)
        s, other = spec(load=0.1), spec(load=0.2)
        path = store.put(other, run_spec(other))
        hijacked = store.path_for(s.fingerprint())
        hijacked.parent.mkdir(parents=True, exist_ok=True)
        hijacked.write_text(path.read_text())  # entry records `other`'s spec
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_unknown_format_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        entry = json.loads(path.read_text())
        entry["format"] = 999
        path.write_text(json.dumps(entry))
        assert store.get(s) is None

    def test_put_overwrites_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        point = run_spec(s)
        path = store.put(s, point)
        path.write_text("garbage")
        store.put(s, point)
        assert store.get(s) == point

    def test_empty_store_len(self, tmp_path):
        assert len(ResultStore(tmp_path / "nowhere")) == 0
