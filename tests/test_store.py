"""Tests for the content-addressed result store."""

import json

from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec


def spec(load=0.2, seed=3):
    return RunSpec(
        SimulationConfig.small(h=2, routing="min", seed=seed), "UN", load, 100, 100
    )


class TestResultStore:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path / "st")
        s = spec()
        assert store.get(s) is None
        assert s not in store
        point = run_spec(s)
        store.put(s, point, wall_time=0.1)
        assert s in store
        assert store.get(s) == point  # exact dataclass equality
        assert len(store) == 1
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_distinct_specs_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = spec(load=0.1), spec(load=0.2)
        store.put(a, run_spec(a))
        assert store.get(b) is None
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        path.write_text("{ not json")
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_foreign_spec_under_right_fingerprint_is_a_miss(self, tmp_path):
        """A fingerprint collision (or tampered entry) must not serve a
        point for a different simulation."""
        store = ResultStore(tmp_path)
        s, other = spec(load=0.1), spec(load=0.2)
        path = store.put(other, run_spec(other))
        hijacked = store.path_for(s.fingerprint())
        hijacked.parent.mkdir(parents=True, exist_ok=True)
        hijacked.write_text(path.read_text())  # entry records `other`'s spec
        assert store.get(s) is None
        assert store.stats.corrupt == 1

    def test_unknown_format_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        path = store.put(s, run_spec(s))
        entry = json.loads(path.read_text())
        entry["format"] = 999
        path.write_text(json.dumps(entry))
        assert store.get(s) is None

    def test_put_overwrites_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        s = spec()
        point = run_spec(s)
        path = store.put(s, point)
        path.write_text("garbage")
        store.put(s, point)
        assert store.get(s) == point

    def test_empty_store_len(self, tmp_path):
        assert len(ResultStore(tmp_path / "nowhere")) == 0


class TestStoreMaintenance:
    """verify / gc / stats — the ``repro store`` CLI's backing API."""

    def test_verify_clean_store(self, tmp_path):
        store = ResultStore(tmp_path)
        for s in (spec(load=0.1), spec(load=0.2)):
            store.put(s, run_spec(s))
        store.put_sidecar("failures", spec(load=0.3), {"error": "boom"})
        assert store.verify() == []

    def test_verify_flags_corrupt_and_foreign(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = spec(load=0.1), spec(load=0.2)
        good = store.put(a, run_spec(a))
        hijacked = store.path_for(b.fingerprint())
        hijacked.parent.mkdir(parents=True, exist_ok=True)
        hijacked.write_text(good.read_text())  # b's slot records a's spec
        good.write_text("{ not json")
        findings = dict(store.verify())
        assert findings[good] == "unreadable or invalid JSON"
        assert findings[hijacked] == "embedded spec does not hash to the filename"

    def test_verify_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "nowhere").verify() == []

    def _checkpoint(self, store, fp):
        path = store.root / "snapshots" / fp[:2] / f"{fp}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{}")
        return path

    def _telemetry(self, store, fp):
        path = store.root / "telemetry" / fp[:2] / f"{fp}.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{}\n")
        return path

    def test_gc_sweeps_orphans_keeps_inflight(self, tmp_path):
        store = ResultStore(tmp_path)
        done, failed, inflight = spec(load=0.1), spec(load=0.2), spec(load=0.3)
        store.put(done, run_spec(done))
        store.put_sidecar("failures", failed, {"error": "boom"})
        orphan_a = self._checkpoint(store, done.fingerprint())
        orphan_b = self._checkpoint(store, failed.fingerprint())
        kept = self._checkpoint(store, inflight.fingerprint())
        tele_live = self._telemetry(store, done.fingerprint())
        tele_orphan = self._telemetry(store, inflight.fingerprint())
        report = store.gc()
        assert sorted(report.removed_checkpoints) == sorted([orphan_a, orphan_b])
        assert report.removed_telemetry == [tele_orphan]
        assert report.kept_checkpoints == 1
        assert not orphan_a.exists() and not orphan_b.exists()
        assert kept.exists(), "potentially in-flight checkpoint must survive"
        assert tele_live.exists()
        assert report.bytes_reclaimed > 0

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        done = spec(load=0.1)
        store.put(done, run_spec(done))
        orphan = self._checkpoint(store, done.fingerprint())
        report = store.gc(dry_run=True)
        assert report.removed_checkpoints == [orphan]
        assert orphan.exists()

    def test_stats_by_kind(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = spec(load=0.1), spec(load=0.2)
        store.put(a, run_spec(a))
        store.put(b, run_spec(b))
        store.put_sidecar("failures", spec(load=0.3), {"error": "x"})
        stats = store.stats_by_kind()
        assert stats["objects"][0] == 2
        assert stats["failures"][0] == 1
        assert all(size > 0 for _, size in stats.values())

    def test_stats_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / "nowhere").stats_by_kind() == {}
