"""Unit tests for the Hamiltonian escape-ring construction."""

import pytest

from repro.topology.dragonfly import Dragonfly, PortKind
from repro.topology.hamiltonian import HamiltonianRing


@pytest.fixture(params=[1, 2, 3])
def ring(request):
    topo = Dragonfly(request.param)
    return HamiltonianRing(topo)


class TestConstruction:
    def test_validates(self, ring):
        ring.validate()

    def test_visits_every_router_once(self, ring):
        assert sorted(ring.order) == list(ring.topo.routers())
        assert len(ring) == ring.topo.num_routers

    def test_successor_closes_cycle(self, ring):
        """Following successors from any start returns after N steps."""
        start = ring.order[0]
        current = start
        for _ in range(len(ring)):
            current = ring.successor(current)
        assert current == start

    def test_successor_uses_real_links(self, ring):
        topo = ring.topo
        for rid in topo.routers():
            port = ring.successor_port(rid)
            peer, _ = topo.neighbor(rid, port)
            assert peer == ring.successor(rid)

    def test_one_global_hop_per_group(self, ring):
        """The cycle crosses groups exactly num_groups times (offset-1
        links), every other hop is local."""
        topo = ring.topo
        global_hops = sum(
            1
            for rid in topo.routers()
            if ring.successor_port_kind(rid) is PortKind.GLOBAL
        )
        assert global_hops == topo.num_groups

    def test_group_traversal_is_contiguous(self, ring):
        """All routers of one group appear consecutively along the cycle."""
        topo = ring.topo
        groups = [topo.router_group(r) for r in ring.order]
        # Count group changes around the cycle: must equal num_groups.
        changes = sum(
            1 for i in range(len(groups)) if groups[i] != groups[i - 1]
        )
        assert changes == topo.num_groups


class TestNavigation:
    def test_position_roundtrip(self, ring):
        for i, rid in enumerate(ring.order):
            assert ring.position(rid) == i

    def test_distance_zero_to_self(self, ring):
        assert ring.distance(ring.order[0], ring.order[0]) == 0

    def test_distance_one_to_successor(self, ring):
        for rid in ring.order[:8]:
            assert ring.distance(rid, ring.successor(rid)) == 1

    def test_distance_wraps(self, ring):
        first, last = ring.order[0], ring.order[-1]
        assert ring.distance(last, first) == 1
        assert ring.distance(first, last) == len(ring) - 1

    def test_distance_covers_all(self, ring):
        start = ring.order[3 % len(ring)]
        seen = {ring.distance(start, rid) for rid in ring.order}
        assert seen == set(range(len(ring)))
