"""Tests for the injection-restriction congestion-control extension."""

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import PortKind


def make_sim(**overrides):
    cfg = SimulationConfig.small(
        h=2, routing="ofar", congestion_control=True, **overrides
    )
    return Simulator(cfg)


class TestInjectionRestriction:
    def test_injects_when_uncongested(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        assert sim.network.try_inject(pkt, 0)

    def test_blocks_when_congested(self):
        sim = make_sim(congestion_threshold=0.5)
        net = sim.network
        rt = net.routers[0]
        for ch in rt.out:
            if ch is not None and ch.kind is not PortKind.NODE:
                for vc in ch.data_vcs:
                    ch.credits[vc] = 0  # 100% occupancy everywhere
        pkt = sim.create_packet(0, 71)
        assert not net.try_inject(pkt, 0)

    def test_unblocks_after_drain(self):
        sim = make_sim(congestion_threshold=0.5)
        net = sim.network
        rt = net.routers[0]
        saved = [
            (ch, list(ch.credits))
            for ch in rt.out
            if ch is not None and ch.kind is not PortKind.NODE
        ]
        for ch, _ in saved:
            for vc in ch.data_vcs:
                ch.credits[vc] = 0
        pkt = sim.create_packet(0, 71)
        assert not net.try_inject(pkt, 1)
        for ch, credits in saved:
            ch.credits[:] = credits
        assert net.try_inject(pkt, 2)  # fresh cycle -> fresh memo

    def test_occupancy_memoized_per_cycle(self):
        sim = make_sim()
        net = sim.network
        rt = net.routers[0]
        v1 = net.router_occupancy(rt, 5)
        # Mutate credits; same-cycle reads keep the memo.
        rt.out[rt.out[0].port + 2].credits[0] = 0
        assert net.router_occupancy(rt, 5) == v1
        assert net.router_occupancy(rt, 6) != v1

    def test_disabled_by_default(self):
        cfg = SimulationConfig.small(h=2, routing="ofar")
        assert not cfg.congestion_control

    def test_source_queue_holds_blocked_packets(self):
        """Blocked injections stay in the node source queue and are
        eventually delivered (no silent drops)."""
        sim = make_sim(congestion_threshold=-1.0)  # block everything
        for i in range(5):
            sim.create_packet(0, 30 + i)
        sim.run(50)
        assert sim.network.injected_packets == 0
        assert sim.outstanding_packets() == 5
        # Relax the threshold and drain.
        sim.config = sim.config.replace(congestion_threshold=0.9)
        sim.network.config = sim.config
        sim.run_until_drained(100_000)
        assert sim.network.ejected_packets == 5
