"""Tests for the closed-form bounds and the §VII cost model."""

import pytest

from repro.analysis import bounds


class TestThroughputBounds:
    def test_min_adversarial(self):
        assert bounds.min_adversarial_bound(6) == pytest.approx(1 / 72)
        # Paper: "in a large network with h = 16, this reduces
        # throughput to less than 0.2% of its maximum".
        assert bounds.min_adversarial_bound(16) < 0.002

    def test_valiant(self):
        assert bounds.valiant_bound() == 0.5

    def test_local_link_advh(self):
        # Paper §VI: 1/h = 1/6 = 0.166 at h=6.
        assert bounds.local_link_advh_bound(6) == pytest.approx(0.1666, abs=1e-3)
        # "For the same large network h = 16 this would limit traffic
        # to a 6.25% of its maximum".
        assert bounds.min_local_neighbor_bound(16) == pytest.approx(0.0625)

    def test_bounds_shrink_with_h(self):
        for h in range(2, 16):
            assert bounds.local_link_advh_bound(h + 1) < bounds.local_link_advh_bound(h)
            assert bounds.min_adversarial_bound(h + 1) < bounds.min_adversarial_bound(h)


class TestRingCost:
    def test_link_fraction_h16_about_4_percent(self):
        """§VII: 'with h = 16, this means 4% more wires'."""
        assert bounds.ring_added_link_fraction(16) == pytest.approx(0.04, abs=0.005)

    def test_link_fraction_formula(self):
        for h in (2, 4, 8, 16):
            assert bounds.ring_added_link_fraction(h) == pytest.approx(
                2 / (3 * h - 1), rel=1e-9
            )

    def test_global_wires_h16_about_03_percent(self):
        """§VII: '2h^2+1 added to the 2h^4+h^2 original long wires ...
        only 0.3% more global wires' at h=16."""
        frac = bounds.ring_added_global_fraction(16)
        assert 0.002 < frac < 0.005

    def test_global_wire_counts(self):
        assert bounds.ring_added_global_wires(6) == 73
        assert bounds.original_global_wires(6) == 2 * 6**4 + 36

    def test_total_links_h6(self):
        # 73 groups * 66 local + 2628 global.
        assert bounds.total_links(6) == 73 * 66 + 2628


class TestMultiRing:
    def test_edge_disjoint_rings_bound_is_h(self):
        """§VII: 'up to h edge-disjoint Hamiltonian rings'."""
        for h in (2, 3, 6, 16):
            assert bounds.max_edge_disjoint_rings(h) == h
