"""Behavioural tests for MIN, VAL, UGAL-L: path shape and VC order."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.routing.base import RoutingAlgorithm
from repro.topology.dragonfly import PortKind


def deliver_one(routing, src, dst, h=2, **overrides):
    """Run a single packet to its destination; returns (packet, cycles)."""
    cfg = SimulationConfig.small(h=h, routing=routing, **overrides)
    sim = Simulator(cfg)
    pkt = sim.create_packet(src, dst)
    end = sim.run_until_drained(100_000)
    assert pkt.ejected_cycle >= 0
    return pkt, end


class TestMinimalPaths:
    def test_same_router(self):
        pkt, _ = deliver_one("min", 0, 1)
        assert pkt.hops == 0
        assert pkt.local_hops == pkt.global_hops == 0

    def test_same_group(self):
        cfg = SimulationConfig.small(h=2)
        p = cfg.h  # nodes per router
        pkt, _ = deliver_one("min", 0, p * 1)  # router 1, same group
        assert pkt.hops == 1
        assert (pkt.local_hops, pkt.global_hops) == (1, 0)

    def test_intergroup_at_most_three_hops(self):
        pkt, _ = deliver_one("min", 0, 71)  # h=2: last node, last group
        assert pkt.hops <= 3
        assert pkt.global_hops == 1

    def test_min_never_misroutes(self):
        pkt, _ = deliver_one("min", 3, 50)
        assert pkt.misroutes_local == pkt.misroutes_global == 0
        assert not pkt.used_ring

    def test_min_latency_includes_serialization(self):
        """One local hop: inject(8) + wire(2) + arrive(8 with tail) +
        eject(1+8) — latency must be at least the serialized path."""
        cfg = SimulationConfig.small(h=2)
        pkt, _ = deliver_one("min", 0, cfg.h * 1)
        assert pkt.latency >= 2 * cfg.packet_size + cfg.local_latency


class TestValiantPaths:
    def test_intergroup_five_hops_max(self):
        pkt, _ = deliver_one("val", 0, 71)
        assert pkt.hops <= 5
        assert pkt.global_hops == 2  # always two global hops inter-group

    def test_intragroup_is_minimal(self):
        """VAL routes intra-group traffic minimally (no intermediate)."""
        cfg = SimulationConfig.small(h=2)
        pkt, _ = deliver_one("val", 0, cfg.h * 2)  # router 2, group 0
        assert pkt.global_hops == 0
        assert pkt.hops == 1

    def test_intermediate_group_consumed(self):
        pkt, _ = deliver_one("val", 0, 71)
        assert pkt.intermediate_group == -1  # cleared on arrival

    def test_valiant_spreads_intermediates(self):
        """Across many packets the intermediate groups vary."""
        cfg = SimulationConfig.small(h=2, routing="val")
        sim = Simulator(cfg)
        intermediates = set()
        pkts = [sim.create_packet(0, 71) for _ in range(30)]
        # Capture the Valiant target at injection time.
        orig = sim.routing.on_inject

        def spy(pkt):
            orig(pkt)
            intermediates.add(pkt.intermediate_group)

        sim.routing.on_inject = spy
        sim.run_until_drained(200_000)
        intermediates.discard(-1)
        assert len(intermediates) >= 3

    def test_intermediate_excludes_src_dst(self):
        cfg = SimulationConfig.small(h=2, routing="val")
        sim = Simulator(cfg)
        seen = []
        orig = sim.routing.on_inject

        def spy(pkt):
            orig(pkt)
            seen.append(pkt.intermediate_group)

        sim.routing.on_inject = spy
        for _ in range(20):
            pkt = sim.create_packet(0, 71)
        sim.run_until_drained(200_000)
        src_g, dst_g = 0, sim.network.topo.node_group(71)
        for ig in seen:
            assert ig not in (src_g, dst_g)


class TestUGAL:
    def test_low_load_prefers_minimal(self):
        """With empty queues, UGAL-L must route minimally."""
        pkt, _ = deliver_one("ugal", 0, 71)
        assert pkt.global_hops == 1
        assert pkt.intermediate_group == -1

    def test_congested_min_path_goes_valiant(self):
        """Artificially exhaust the minimal output's credits: the next
        injected packet must choose the Valiant path."""
        cfg = SimulationConfig.small(h=2, routing="ugal")
        sim = Simulator(cfg)
        topo = sim.network.topo
        dst = 71
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, dst)
        ch = rt.out[mp]
        for vc in ch.data_vcs:
            ch.credits[vc] = 0
        pkt = sim.create_packet(0, dst)
        sim.routing.on_inject(pkt)
        assert pkt.intermediate_group >= 0


class TestOrderedVCs:
    def test_vc_map_values(self):
        """The ascending VC map: local VC = #globals so far, global VC =
        global hop index (paper §I)."""
        cfg = SimulationConfig.small(h=2, routing="val")
        sim = Simulator(cfg)
        algo: RoutingAlgorithm = sim.routing
        pkt = sim.create_packet(0, 71)
        assert algo.ordered_vc(pkt, PortKind.LOCAL) == 0
        assert algo.ordered_vc(pkt, PortKind.GLOBAL) == 0
        pkt.global_hops = 1
        assert algo.ordered_vc(pkt, PortKind.LOCAL) == 1
        assert algo.ordered_vc(pkt, PortKind.GLOBAL) == 1
        pkt.global_hops = 2
        assert algo.ordered_vc(pkt, PortKind.LOCAL) == 2
        assert algo.ordered_vc(pkt, PortKind.NODE) == 0

    @pytest.mark.parametrize("routing", ["min", "val", "ugal", "pb"])
    def test_granted_vcs_follow_order(self, routing, monkeypatch):
        """Instrument grants: every hop's VC must match the map."""
        from repro.network.network import Network
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern
        import random as _random

        cfg = SimulationConfig.small(h=2, routing=routing)
        sim = Simulator(cfg)
        violations = []
        orig = Network.execute_grant

        def checked(net, rt, in_port, in_vc, out_port, out_vc, kind, cycle):
            pkt = rt.in_bufs[in_port][in_vc].head()
            ch = rt.out[out_port]
            if ch.kind is PortKind.LOCAL and out_vc != pkt.global_hops:
                violations.append((pkt.pid, "local", out_vc, pkt.global_hops))
            if ch.kind is PortKind.GLOBAL and out_vc != pkt.global_hops:
                violations.append((pkt.pid, "global", out_vc, pkt.global_hops))
            return orig(net, rt, in_port, in_vc, out_port, out_vc, kind, cycle)

        monkeypatch.setattr(Network, "execute_grant", checked)
        pattern = make_pattern(sim.network.topo, _random.Random(5), "UN")
        sim.generator = BernoulliTraffic(pattern, 0.3, 8, sim.network.topo.num_nodes, 11)
        sim.run(400)
        assert violations == []
