"""Unit/behaviour tests for OFAR's misrouting rules (§IV-A/B)."""

import pytest

from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.simulator import Simulator
from repro.network.router import (
    KIND_MIN,
    KIND_MIS_GLOBAL,
    KIND_MIS_LOCAL,
    KIND_RING_ENTER,
)
from repro.topology.dragonfly import PortKind


def make_sim(routing="ofar", h=2, **overrides):
    return Simulator(SimulationConfig.small(h=h, routing=routing, **overrides))


def starve(ch):
    """Remove all data credits from an output channel."""
    for vc in ch.data_vcs:
        ch.credits[vc] = 0


def fill_fraction(ch, fraction):
    """Set data-VC credits so occupancy_fraction() == fraction."""
    for vc in ch.data_vcs:
        ch.credits[vc] = round(ch.capacity * (1 - fraction))


class TestMinimalPreferred:
    def test_min_requested_when_available(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is not None
        port, vc, kind = req
        assert kind == KIND_MIN
        assert port == sim.network.topo.min_output_port(0, 71)

    def test_ejection_stalls_without_alternatives(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 1)  # same router: min = ejection
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        rt.out[1].busy_until = 100
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is None  # never misroutes around an ejection port


def self_vc(rt, port):
    """VC holding the only queued packet on a port."""
    for vc, buf in enumerate(rt.in_bufs[port]):
        if buf:
            return vc
    raise AssertionError("no packet queued")


class TestInjectionQueueMisroute:
    def test_global_misroute_for_external_traffic(self):
        sim = make_sim()
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, 71)
        starve(rt.out[mp])
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is not None
        port, _, kind = req
        assert kind == KIND_MIS_GLOBAL
        assert topo.port_kind(port) is PortKind.GLOBAL
        assert port != mp

    def test_no_global_misroute_after_flag(self):
        sim = make_sim()
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        pkt.global_misrouted = True
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        starve(rt.out[topo.min_output_port(0, 71)])
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        # Only the escape ring remains (injection packets don't misroute
        # locally for external traffic).
        assert req is None or req[2] == KIND_RING_ENTER

    def test_intragroup_local_misroute(self):
        sim = make_sim()
        topo = sim.network.topo
        dst = topo.p * 1  # router 1, same group
        pkt = sim.create_packet(0, dst)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        starve(rt.out[topo.min_output_port(0, dst)])
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is not None
        port, _, kind = req
        assert kind == KIND_MIS_LOCAL
        assert topo.port_kind(port) is PortKind.LOCAL

    def test_intragroup_never_misroutes_globally(self):
        sim = make_sim()
        topo = sim.network.topo
        dst = topo.p * 1
        pkt = sim.create_packet(0, dst)
        pkt.local_misroute_group = 0  # local hop spent
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        starve(rt.out[topo.min_output_port(0, dst)])
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is None or req[2] == KIND_RING_ENTER


class TestTransitQueueMisroute:
    def _packet_in_local_queue(self, sim, dst=71):
        """Plant a packet in a local input queue of router 0."""
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * 1, dst)  # src on router 1 (group 0)
        port = topo.local_port(0, 1)  # input from router 1
        rt.in_bufs[port][0].push(pkt)
        rt.pending.add((port, 0))
        sim.network.injected_packets += 1  # keep conservation coherent
        return rt, port, pkt

    def test_local_queue_misroutes_locally_first(self):
        sim = make_sim()
        topo = sim.network.topo
        rt, port, pkt = self._packet_in_local_queue(sim)
        starve(rt.out[topo.min_output_port(0, pkt.dst)])
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None
        out_port, _, kind = req
        assert kind == KIND_MIS_LOCAL
        assert topo.port_kind(out_port) is PortKind.LOCAL
        assert out_port != port  # never bounce straight back

    def test_local_queue_then_global(self):
        """Once this group's local misroute is spent, source-group
        packets in local queues misroute globally (§IV-A)."""
        sim = make_sim()
        topo = sim.network.topo
        rt, port, pkt = self._packet_in_local_queue(sim)
        pkt.local_misroute_group = rt.group
        starve(rt.out[topo.min_output_port(0, pkt.dst)])
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is not None
        out_port, _, kind = req
        assert kind == KIND_MIS_GLOBAL
        assert topo.port_kind(out_port) is PortKind.GLOBAL

    def test_non_source_group_only_local(self):
        """Outside the source group only local misrouting is allowed."""
        sim = make_sim()
        topo = sim.network.topo
        rt, port, pkt = self._packet_in_local_queue(sim)
        pkt.local_misroute_group = rt.group
        # Pretend the packet came from another group.
        pkt.src_group = 3
        starve(rt.out[topo.min_output_port(0, pkt.dst)])
        req = sim.routing.route(rt, port, 0, pkt, 0)
        assert req is None or req[2] == KIND_RING_ENTER

    def test_ofar_l_never_misroutes_locally(self):
        sim = make_sim(routing="ofar-l")
        topo = sim.network.topo
        rt, port, pkt = self._packet_in_local_queue(sim)
        starve(rt.out[topo.min_output_port(0, pkt.dst)])
        req = sim.routing.route(rt, port, 0, pkt, 0)
        # OFAR-L falls through to global misroute in the source group.
        assert req is not None
        assert req[2] == KIND_MIS_GLOBAL


class TestThresholds:
    def test_candidates_filtered_by_occupancy(self):
        """With the variable policy, a nonminimal port at >= 0.9*Q_min
        occupancy is ineligible."""
        sim = make_sim(thresholds=ThresholdConfig.variable(0.9))
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, 71)
        starve(rt.out[mp])  # Q_min = 1.0 -> limit 0.9
        for k in range(topo.h):
            gp = topo.global_port(k)
            if gp != mp:
                fill_fraction(rt.out[gp], 0.95)  # above the limit
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is None or req[2] == KIND_RING_ENTER

    def test_static_threshold_allows_only_below_ceiling(self):
        sim = make_sim(thresholds=ThresholdConfig.static(th_min=0.0, th_nonmin=0.4))
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, 71)
        starve(rt.out[mp])
        for k in range(topo.h):
            gp = topo.global_port(k)
            if gp != mp:
                fill_fraction(rt.out[gp], 0.5)  # above 0.4 ceiling
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is None or req[2] == KIND_RING_ENTER

    def test_th_min_gates_misrouting(self):
        """With the static policy Th_min = 100%, a busy-but-uncongested
        minimal port does not unlock misrouting."""
        sim = make_sim(thresholds=ThresholdConfig.static(th_min=1.0, th_nonmin=0.4))
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, 71)
        rt.out[mp].busy_until = 100  # busy, but occupancy is 0 < Th_min
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req is None

    def test_free_vc_choice(self):
        """OFAR picks the data VC with most credits (no ordering)."""
        sim = make_sim()
        topo = sim.network.topo
        pkt = sim.create_packet(0, 71)
        sim.network.try_inject(pkt, 0)
        rt = sim.network.routers[0]
        mp = topo.min_output_port(0, 71)
        ch = rt.out[mp]
        ch.credits[0] = 9
        ch.credits[1] = ch.capacity
        req = sim.routing.route(rt, 0, self_vc(rt, 0), pkt, 0)
        assert req[0] == mp and req[1] == 1


class TestMisrouteAccounting:
    def test_flags_set_on_grant(self):
        """End-to-end under adversarial load: flag discipline holds."""
        from repro.engine.runner import _pattern_rng
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing="ofar")
        sim = Simulator(cfg)
        pattern = make_pattern(sim.network.topo, _pattern_rng(cfg, 9), "ADV+2")
        sim.generator = BernoulliTraffic(pattern, 0.4, 8, sim.network.topo.num_nodes, 17)
        ejected = []
        orig = sim.metrics.on_eject

        def spy(pkt, cycle):
            ejected.append(pkt)
            orig(pkt, cycle)

        sim.network.on_eject = spy
        sim.run(800)
        assert ejected
        for pkt in ejected:
            assert pkt.misroutes_global <= 1  # one global misroute/packet
            if not pkt.used_ring:
                # One local misroute per group, <= 3 groups visited; the
                # minimal-retry bounce allows up to 3 locals per group
                # (see the divergence note in repro.core.ofar).
                assert pkt.misroutes_local <= 3
                assert pkt.hops <= 10
        assert any(p.misroutes_global for p in ejected)  # ADV forces misroutes
