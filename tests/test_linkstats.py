"""Tests for the per-link utilization monitor."""

from repro.analysis.linkstats import LinkMonitor, LinkStats
from repro.engine.config import SimulationConfig
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import PortKind
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def loaded_sim(routing, pattern, load, cycles=600):
    cfg = SimulationConfig.small(h=2, routing=routing)
    sim = Simulator(cfg)
    topo = sim.network.topo
    p = make_pattern(topo, _pattern_rng(cfg, 4), pattern)
    sim.generator = BernoulliTraffic(p, load, 8, topo.num_nodes, 31)
    monitor = LinkMonitor(sim.network)
    sim.run(200)
    monitor.start(sim.cycle)
    sim.run(cycles)
    return sim, monitor


class TestLinkStats:
    def test_stats_of_empty(self):
        s = LinkStats.of([], "local")
        assert s.count == 0 and s.mean == 0.0

    def test_stats_of_values(self):
        s = LinkStats.of([0.1, 0.2, 0.3, 0.4], "local")
        assert s.count == 4
        assert s.mean == 0.25
        assert s.maximum == 0.4


class TestMonitor:
    def test_reads_before_start_raise(self):
        import pytest

        sim = Simulator(SimulationConfig.small(h=2, routing="min"))
        monitor = LinkMonitor(sim.network)
        with pytest.raises(RuntimeError, match="start"):
            monitor.loads(sim.cycle)
        with pytest.raises(RuntimeError, match="start"):
            monitor.stats(sim.cycle)
        monitor.start(sim.cycle)
        assert monitor.loads(sim.cycle) is not None  # armed now

    def test_loads_cover_all_channels(self):
        sim, monitor = loaded_sim("min", "UN", 0.2, cycles=200)
        loads = monitor.loads(sim.cycle)
        topo = sim.network.topo
        expected = topo.num_routers * (topo.local_ports + topo.global_ports)
        assert len(loads) == expected
        assert all(0.0 <= x.utilization <= 1.0 for x in loads)

    def test_window_diff_not_cumulative(self):
        sim, monitor = loaded_sim("min", "UN", 0.3, cycles=300)
        before = {(x.router, x.port): x.utilization for x in monitor.loads(sim.cycle)}
        monitor.start(sim.cycle)
        fresh = monitor.loads(sim.cycle)  # zero-length window
        assert all(x.utilization == 0.0 for x in fresh)
        assert any(v > 0 for v in before.values())

    def test_uniform_traffic_balanced(self):
        sim, monitor = loaded_sim("min", "UN", 0.3)
        imbalance = monitor.imbalance(sim.cycle, PortKind.LOCAL)
        assert imbalance < 4.0  # no funnel under UN

    def test_adversarial_funnels_local_links(self):
        """§III: ADV+h under Valiant concentrates local-link load: the
        funnel factor approaches h x the mean."""
        sim_un, mon_un = loaded_sim("val", "UN", 0.4)
        sim_adv, mon_adv = loaded_sim("val", "ADV+2", 0.4)
        imb_un = mon_un.imbalance(sim_un.cycle, PortKind.LOCAL)
        imb_adv = mon_adv.imbalance(sim_adv.cycle, PortKind.LOCAL)
        assert imb_adv > 1.3 * imb_un

    def test_hottest_sorted(self):
        sim, monitor = loaded_sim("val", "ADV+2", 0.4)
        top = monitor.hottest(sim.cycle, n=5)
        assert len(top) == 5
        assert all(
            top[i].utilization >= top[i + 1].utilization for i in range(4)
        )

    def test_stats_by_kind(self):
        sim, monitor = loaded_sim("min", "UN", 0.3)
        stats = monitor.stats(sim.cycle)
        assert set(stats) == {"local", "global"}
        assert stats["local"].count > 0
        assert 0 <= stats["global"].mean <= 1
