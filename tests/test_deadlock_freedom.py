"""Deadlock-freedom stress tests.

The baselines rely on the ascending VC order; OFAR relies on the escape
ring.  We stress each with saturating adversarial loads and tight
buffers, then require complete draining — the watchdog inside the
simulator turns any true deadlock into an exception.
"""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def stress(cfg, pattern, load=0.9, cycles=600):
    sim = Simulator(cfg)
    topo = sim.network.topo
    p = make_pattern(topo, _pattern_rng(cfg, 8), pattern)
    sim.generator = BernoulliTraffic(p, load, cfg.packet_size, topo.num_nodes, 21)
    sim.run(cycles)
    sim.generator = None
    sim.run_until_drained(500_000)
    assert sim.network.ejected_packets == sim.created_packets
    sim.network.check_conservation()


@pytest.mark.parametrize("routing", ["min", "val", "ugal", "pb"])
@pytest.mark.parametrize("pattern", ["UN", "ADV+2"])
def test_baselines_never_deadlock(routing, pattern):
    cfg = SimulationConfig.small(h=2, routing=routing)
    stress(cfg, pattern)


@pytest.mark.parametrize("escape", ["physical", "embedded"])
@pytest.mark.parametrize("pattern", ["UN", "ADV+2", "ADV-LOCAL"])
def test_ofar_never_deadlocks(escape, pattern):
    cfg = SimulationConfig.small(h=2, routing="ofar", escape=escape)
    stress(cfg, pattern)


def test_ofar_tight_buffers_adversarial():
    """Minimal legal buffering: the hardest deadlock scenario."""
    cfg = SimulationConfig.small(
        h=2, routing="ofar", escape="embedded",
        local_buffer=16, global_buffer=16, injection_buffer=8,
        local_vcs=1, global_vcs=1, injection_vcs=1,
    )
    stress(cfg, "ADV+2", load=0.9, cycles=500)


def test_ofar_l_tight_buffers():
    cfg = SimulationConfig.small(
        h=2, routing="ofar-l", escape="physical",
        local_buffer=16, global_buffer=16, ring_buffer=16,
        local_vcs=1, global_vcs=1,
    )
    stress(cfg, "ADV+2", load=0.9, cycles=500)


def test_reduced_vcs_fig9_configuration():
    """The §VII stress configuration must not deadlock (it congests,
    but the ring keeps it live)."""
    cfg = SimulationConfig.small(
        h=2, routing="ofar", escape="embedded",
        local_vcs=2, global_vcs=1, injection_vcs=2,
    )
    stress(cfg, "ADV+2", load=1.0, cycles=600)


def test_min_local_pattern_deadlock_free_under_min():
    """ADV-LOCAL saturates single local links under MIN; slow but live."""
    cfg = SimulationConfig.small(h=2, routing="min")
    stress(cfg, "ADV-LOCAL", load=0.8, cycles=400)
