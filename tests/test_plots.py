"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.plots import (
    ChartSeries,
    bar_chart,
    latency_chart,
    line_chart,
    sparkline,
    throughput_chart,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 4


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")
        assert "2" in lines[1]

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0])
        assert "x" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(empty)"


class TestLineChart:
    def test_empty(self):
        assert "(empty chart)" in line_chart([])

    def test_markers_and_legend(self):
        s1 = ChartSeries("up", [(0, 0), (1, 1)])
        s2 = ChartSeries("down", [(0, 1), (1, 0)])
        out = line_chart([s1, s2], width=20, height=8)
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_extremes_on_grid(self):
        s = ChartSeries("s", [(0, 0), (10, 100)])
        out = line_chart([s], width=30, height=6)
        assert "100" in out and "0" in out

    def test_single_point(self):
        out = line_chart([ChartSeries("p", [(1, 2)])], width=10, height=4)
        assert "o" in out


class TestRunnerIntegration:
    def _series(self):
        from repro.analysis.results import Series
        from tests.test_results import mk_point

        return [
            Series("ofar", [mk_point(0.1, 0.1, 40), mk_point(0.4, 0.39, 80)]),
            Series("pb", [mk_point(0.1, 0.1, 45), mk_point(0.4, 0.31, 300)]),
        ]

    def test_throughput_chart(self):
        out = throughput_chart(self._series())
        assert "throughput" in out
        assert "offered load" in out

    def test_latency_chart_with_cap(self):
        out = latency_chart(self._series(), cap=100.0)
        assert "latency" in out
        assert "300" not in out  # capped
