"""Tests for the PAR extension baseline."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import PortKind


def make_sim(**overrides):
    cfg = SimulationConfig.small(h=2, routing="par", local_vcs=4, **overrides)
    return Simulator(cfg)


class TestConfig:
    def test_par_requires_four_local_vcs(self):
        with pytest.raises(ValueError, match="VCs"):
            SimulationConfig.small(h=2, routing="par")  # default 3 local VCs

    def test_par_valid_with_four(self):
        cfg = SimulationConfig.small(h=2, routing="par", local_vcs=4)
        assert cfg.routing == "par"
        assert cfg.escape == "none"


class TestVCMap:
    def test_local_vc_by_local_hop_index(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        algo = sim.routing
        assert algo.ordered_vc(pkt, PortKind.LOCAL) == 0
        pkt.local_hops = 2
        assert algo.ordered_vc(pkt, PortKind.LOCAL) == 2
        pkt.global_hops = 1
        assert algo.ordered_vc(pkt, PortKind.GLOBAL) == 1
        assert algo.ordered_vc(pkt, PortKind.NODE) == 0


class TestDivert:
    def test_uncongested_stays_minimal(self):
        sim = make_sim()
        pkt = sim.create_packet(0, 71)
        sim.run_until_drained(100_000)
        assert pkt.global_hops == 1  # minimal inter-group path

    def test_congested_source_router_diverts(self):
        sim = make_sim()
        topo = sim.network.topo
        dst = 71
        rt = sim.network.routers[0]
        ch = rt.out[topo.min_output_port(0, dst)]
        for vc in ch.data_vcs:
            ch.credits[vc] = 0
        pkt = sim.create_packet(0, dst)
        sim.network.try_inject(pkt, 0)
        req = sim.routing.route(rt, 0, 0, pkt, 0)
        # The divert decision fired before routing: intermediate set.
        assert pkt.intermediate_group >= 0
        assert pkt.intermediate_group not in (pkt.src_group, pkt.dst_group)

    def test_divert_only_in_source_group(self):
        sim = make_sim()
        topo = sim.network.topo
        rt = sim.network.routers[0]
        pkt = sim.create_packet(topo.p * topo.a, 71)  # src in group 1
        pkt.cache_rid = -1
        ch = rt.out[topo.min_output_port(0, 71)]
        for vc in ch.data_vcs:
            ch.credits[vc] = 0
        sim.routing._maybe_divert(rt, pkt)  # router 0 is group 0 != src group
        assert pkt.intermediate_group == -1

    def test_divert_final_after_global_hop(self):
        sim = make_sim()
        rt = sim.network.routers[0]
        pkt = sim.create_packet(0, 71)
        pkt.global_hops = 1
        pkt.cache_rid = -1
        sim.routing._maybe_divert(rt, pkt)
        assert pkt.intermediate_group == -1


class TestEndToEnd:
    def test_delivery_and_conservation(self):
        from repro.engine.runner import _pattern_rng
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing="par", local_vcs=4)
        sim = Simulator(cfg)
        topo = sim.network.topo
        p = make_pattern(topo, _pattern_rng(cfg, 2), "ADV+2")
        sim.generator = BernoulliTraffic(p, 0.4, 8, topo.num_nodes, 23)
        sim.run(400)
        sim.generator = None
        sim.run_until_drained(300_000)
        assert sim.network.ejected_packets == sim.created_packets
        sim.network.check_conservation()

    def test_par_beats_min_under_adversarial(self):
        cfg_par = SimulationConfig.small(h=2, routing="par", local_vcs=4)
        cfg_min = SimulationConfig.small(h=2, routing="min")
        par = run_spec(RunSpec(cfg_par, "ADV+2", 0.35, warmup=600, measure=600))
        mn = run_spec(RunSpec(cfg_min, "ADV+2", 0.35, warmup=600, measure=600))
        assert par.throughput > 1.5 * mn.throughput

    def test_par_vc_order_respected(self, monkeypatch):
        """Granted VCs follow PAR's per-class hop-index map."""
        from repro.network.network import Network
        from repro.engine.runner import _pattern_rng
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing="par", local_vcs=4)
        sim = Simulator(cfg)
        violations = []
        orig = Network.execute_grant

        def checked(net, rt, in_port, in_vc, out_port, out_vc, kind, cycle):
            pkt = rt.in_bufs[in_port][in_vc].head()
            ch = rt.out[out_port]
            if ch.kind is PortKind.LOCAL and out_vc != pkt.local_hops:
                violations.append(pkt.pid)
            if ch.kind is PortKind.GLOBAL and out_vc != pkt.global_hops:
                violations.append(pkt.pid)
            return orig(net, rt, in_port, in_vc, out_port, out_vc, kind, cycle)

        monkeypatch.setattr(Network, "execute_grant", checked)
        pattern = make_pattern(sim.network.topo, _pattern_rng(cfg, 6), "ADV+1")
        sim.generator = BernoulliTraffic(pattern, 0.35, 8, sim.network.topo.num_nodes, 9)
        sim.run(400)
        assert violations == []
