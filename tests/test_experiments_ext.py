"""Smoke tests for the extension experiment drivers (tiny scale)."""

from repro.experiments import TINY
from repro.experiments import (
    ablations,
    congestion,
    mapping_study,
    router_design,
    starvation,
)


class TestAblations:
    def test_threshold_policies_list(self):
        names = [n for n, _ in ablations.threshold_policies()]
        assert "var-0.9" in names  # the paper default
        assert "static-40" in names

    def test_run_thresholds(self):
        table = ablations.run_thresholds(TINY, loads=[0.2])
        assert {"policy", "pattern", "load", "throughput"} <= set(table.columns)
        assert len(table.rows) == len(ablations.threshold_policies()) * 2

    def test_run_allocator_iterations(self):
        table = ablations.run_allocator_iterations(TINY, load=0.3)
        iters = {r["iterations"] for r in table.rows}
        assert iters == {1, 2, 3, 4}

    def test_run_ring_exits(self):
        table = ablations.run_ring_exits(TINY, load=0.3)
        assert {r["max_exits"] for r in table.rows} == {0, 1, 4, 16}

    def test_run_mechanism_family(self):
        table = ablations.run_mechanism_family(TINY, loads=[0.2])
        routings = [r["routing"] for r in table.rows]
        assert routings == ["min", "val", "ugal", "par", "pb", "ofar-l", "ofar"]


class TestCongestion:
    def test_columns(self):
        table = congestion.run(TINY, loads=[0.3])
        assert {"config", "load", "none_thr", "cc_thr"} <= set(table.columns)
        assert len(table.rows) == 2  # full + reduced

    def test_timeline_columns(self):
        table = congestion.run_timeline(TINY, load=0.5)
        assert {
            "cycle", "none_ring", "none_stalls", "none_backlog",
            "cc_ring", "cc_stalls", "cc_backlog",
        } <= set(table.columns)
        assert len(table.rows) >= 2  # one row per sampling window
        cycles = [r["cycle"] for r in table.rows]
        assert cycles == sorted(cycles)


class TestMapping:
    def test_cases_covered(self):
        table = mapping_study.run(TINY, load=0.3)
        pairs = {(r["routing"], r["mapping"]) for r in table.rows}
        assert ("min", "sequential") in pairs
        assert ("ofar", "random") in pairs


class TestRouterDesign:
    def test_designs_equal_buffering(self):
        base = TINY.config("ofar")
        for name, cfg in router_design.designs(TINY):
            total_local = cfg.local_vcs * cfg.local_buffer
            assert total_local == base.local_vcs * base.local_buffer, name

    def test_run(self):
        table = router_design.run(TINY, loads=[0.2])
        designs = {r["design"] for r in table.rows}
        assert designs == {"classic-3vc", "lean-1R", "lean-2R", "lean-3R"}


class TestStarvation:
    def test_run_policy_fields(self):
        row = starvation.run_policy(TINY, "local-first", 0.25)
        assert set(row) == {"policy", "load", "throughput", "jain",
                            "worst_share", "latency"}
        assert 0 <= row["jain"] <= 1

    def test_run_both_policies(self):
        table = starvation.run(TINY, loads=[0.25])
        assert {r["policy"] for r in table.rows} == {"local-first", "global-first"}
