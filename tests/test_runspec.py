"""Tests for RunSpec (fingerprint, JSON) and LoadPoint/Series round-trips."""

import json
import math

import pytest

from repro.analysis.results import Series
from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec


def spec(**kw):
    base = dict(
        config=SimulationConfig.small(h=2, routing="ofar", seed=3),
        pattern_spec="ADV+2",
        load=0.3,
        warmup=200,
        measure=200,
    )
    base.update(kw)
    return RunSpec(**base)


class TestRunSpec:
    def test_frozen_and_hashable(self):
        s = spec()
        with pytest.raises(AttributeError):
            s.load = 0.5
        assert s == spec()
        assert hash(s) == hash(spec())

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(load=-0.1)
        with pytest.raises(ValueError):
            spec(warmup=-1)

    def test_fingerprint_stable_and_distinct(self):
        a, b = spec(), spec()
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 64  # sha256 hex
        # Every field participates in the key.
        assert spec(load=0.31).fingerprint() != a.fingerprint()
        assert spec(pattern_spec="UN").fingerprint() != a.fingerprint()
        assert spec(warmup=201).fingerprint() != a.fingerprint()
        assert spec(measure=201).fingerprint() != a.fingerprint()
        other_cfg = SimulationConfig.small(h=2, routing="ofar", seed=4)
        assert spec(config=other_cfg).fingerprint() != a.fingerprint()

    def test_json_round_trip(self):
        s = spec()
        assert RunSpec.from_json(s.to_json()) == s
        assert RunSpec.from_json(s.to_json()).fingerprint() == s.fingerprint()

    def test_telemetry_excluded_from_identity(self):
        """Telemetry is an observation sidecar, not simulation identity:
        it must not enter the fingerprint or the canonical JSON, or it
        would fork cache keys for bit-identical results."""
        from repro.telemetry import TelemetryConfig

        plain = spec()
        observed = spec(telemetry=TelemetryConfig(interval=50, per_link=True))
        assert observed.fingerprint() == plain.fingerprint()
        assert observed.to_json() == plain.to_json()
        assert "telemetry" not in observed.to_jsonable()
        # Round-tripping drops the sidecar — identity survives.
        assert RunSpec.from_json(observed.to_json()) == plain
        # Still frozen and hashable with the extra field (it participates
        # in dataclass equality, just not in fingerprint identity).
        assert observed != plain
        hash(observed)
        with pytest.raises(AttributeError):
            observed.telemetry = None

    def test_json_rejects_unknown_keys(self):
        data = json.loads(spec().to_json())
        data["surprise"] = 1
        with pytest.raises(ValueError):
            RunSpec.from_jsonable(data)

    def test_label_mentions_the_point(self):
        text = spec().label()
        assert "ofar" in text and "ADV+2" in text and "0.3" in text

    def test_backend_excluded_from_identity(self):
        """Backend selection picks an engine implementation, and every
        registered backend is proven bit-identical — so like telemetry
        it must not fork fingerprints or the canonical JSON."""
        plain = spec()
        arrayed = spec(backend="array")
        assert arrayed.fingerprint() == plain.fingerprint()
        assert arrayed.to_json() == plain.to_json()
        assert "backend" not in arrayed.to_jsonable()
        assert RunSpec.from_json(arrayed.to_json()) == plain

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            spec(backend="")
        with pytest.raises(ValueError):
            spec(backend=7)

    def test_max_windows_is_identity(self):
        """Windowed convergence changes the reported numbers, so it IS
        part of the fingerprint — but only when set, so pre-existing
        fixed-window fingerprints are untouched."""
        plain = spec()
        windowed = spec(max_windows=8)
        assert windowed.fingerprint() != plain.fingerprint()
        assert "max_windows" not in plain.to_jsonable()
        assert windowed.to_jsonable()["max_windows"] == 8
        assert RunSpec.from_json(windowed.to_json()) == windowed
        with pytest.raises(ValueError):
            spec(max_windows=0)

    def test_run_spec_same_point_both_backends(self):
        """The redesigned entry point: run_spec honors spec.backend and
        both engines report the same LoadPoint."""
        s = spec(warmup=60, measure=100)
        import dataclasses

        assert run_spec(s) == run_spec(dataclasses.replace(s, backend="array"))


def mk_point(**kw):
    base = dict(
        offered_load=0.3, throughput=0.2987654321, avg_latency=77.51234,
        avg_network_latency=75.9, avg_hops=4.28, avg_local_hops=2.0,
        avg_global_hops=1.1, p50_latency=76.0, p99_latency=144.0,
        ejected_packets=543, window_cycles=200, ring_fraction=0.0,
        local_misroute_rate=0.698, global_misroute_rate=0.654,
        jain_index=0.9871, worst_source_share=0.0213,
    )
    base.update(kw)
    return LoadPoint(**base)


class TestLoadPointJson:
    def test_round_trip_exact(self):
        pt = mk_point(throughput=1 / 3, avg_latency=0.1 + 0.2)
        assert LoadPoint.from_json(pt.to_json()) == pt  # floats exact

    def test_nan_round_trip(self):
        pt = mk_point(
            avg_latency=float("nan"), avg_hops=float("nan"), ejected_packets=0
        )
        text = pt.to_json()
        assert "NaN" not in text  # valid JSON: NaN encodes as null
        back = LoadPoint.from_json(text)
        assert math.isnan(back.avg_latency)
        assert back.as_row() == pt.as_row()

    def test_missing_and_unknown_keys_rejected(self):
        data = mk_point().to_jsonable()
        data.pop("throughput")
        with pytest.raises(ValueError):
            LoadPoint.from_jsonable(data)
        data2 = mk_point().to_jsonable()
        data2["bogus"] = 1
        with pytest.raises(ValueError):
            LoadPoint.from_jsonable(data2)

    def test_fairness_fields_optional(self):
        """Store entries written before the fairness fields existed read
        back with NaN there (back-compat: not recorded, not an error)."""
        data = mk_point().to_jsonable()
        del data["jain_index"], data["worst_source_share"]
        back = LoadPoint.from_jsonable(data)
        assert math.isnan(back.jain_index)
        assert math.isnan(back.worst_source_share)
        assert back.throughput == mk_point().throughput


class TestSeriesJson:
    def test_round_trip(self):
        s = Series("ofar", [mk_point(), mk_point(offered_load=0.4)])
        back = Series.from_json(s.to_json())
        assert back.name == "ofar"
        assert back.points == s.points

    def test_nan_safe(self):
        s = Series("x", [mk_point(avg_latency=float("nan"), ejected_packets=0)])
        back = Series.from_json(s.to_json())
        assert math.isnan(back.points[0].avg_latency)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Series.from_jsonable({"name": "x"})
