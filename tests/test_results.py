"""Tests for result containers (Series/Table) and rendering."""

import pytest

from repro.analysis.results import Series, Table, series_table
from repro.engine.metrics import LoadPoint


def mk_point(load, thr, lat):
    return LoadPoint(
        offered_load=load, throughput=thr, avg_latency=lat,
        avg_network_latency=lat - 5, avg_hops=3.0, avg_local_hops=2.0,
        avg_global_hops=1.0, p50_latency=lat, p99_latency=2 * lat,
        ejected_packets=100, window_cycles=1000,
        ring_fraction=0.0, local_misroute_rate=0.0, global_misroute_rate=0.0,
    )


class TestSeries:
    def test_saturation_throughput(self):
        s = Series("x", [mk_point(0.1, 0.1, 50), mk_point(0.5, 0.42, 200),
                         mk_point(0.8, 0.40, 900)])
        assert s.saturation_throughput() == 0.42

    def test_latency_at_nearest(self):
        s = Series("x", [mk_point(0.1, 0.1, 50), mk_point(0.5, 0.4, 200)])
        assert s.latency_at(0.12) == 50
        assert s.latency_at(0.6) == 200

    def test_saturation_load(self):
        s = Series("x", [mk_point(0.1, 0.1, 50), mk_point(0.3, 0.3, 90),
                         mk_point(0.5, 0.4, 400)])
        assert s.saturation_load(latency_factor=3.0) == 0.5

    def test_saturation_load_never_saturates(self):
        s = Series("x", [mk_point(0.1, 0.1, 50), mk_point(0.2, 0.2, 60)])
        assert s.saturation_load() == 0.2

    def test_empty_series_raise(self):
        with pytest.raises(ValueError):
            Series("x").saturation_throughput()
        with pytest.raises(ValueError):
            Series("x").latency_at(0.2)


class TestTable:
    def test_text_rendering(self):
        t = Table("demo")
        t.add(a=1, b="xy")
        t.add(a=22, b="z")
        text = t.to_text()
        assert "== demo ==" in text
        lines = text.strip().splitlines()
        assert lines[1].split() == ["a", "b"]
        assert lines[2].split() == ["1", "xy"]

    def test_ragged_rows(self):
        t = Table("demo")
        t.add(a=1)
        t.add(b=2)
        assert t.columns == ["a", "b"]
        assert "2" in t.to_text()

    def test_csv(self):
        t = Table("demo")
        t.add(x=1, y=2)
        csv_text = t.to_csv()
        assert csv_text.splitlines() == ["x,y", "1,2"]

    def test_save_csv(self, tmp_path):
        t = Table("demo")
        t.add(x=5)
        path = tmp_path / "out.csv"
        t.save_csv(str(path))
        assert path.read_text().startswith("x")

    def test_empty_table(self):
        assert "(empty)" in Table("demo").to_text()


class TestSeriesTable:
    def test_combines_curves(self):
        s1 = Series("ofar", [mk_point(0.1, 0.1, 40), mk_point(0.2, 0.2, 45)])
        s2 = Series("pb", [mk_point(0.1, 0.1, 60), mk_point(0.2, 0.18, 80)])
        t = series_table("f", [s1, s2])
        assert len(t.rows) == 2
        assert t.rows[0]["ofar_thr"] == 0.1
        assert t.rows[1]["pb_lat"] == 80.0

    def test_empty(self):
        assert series_table("f", []).rows == []
