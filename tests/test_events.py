"""Micro-tests for the event wheel and active-set router scheduling.

The cycle engine is active-set driven: :class:`EventWheel` holds every
timed event (arrivals, credits, ejections, router wake-ups) and the
allocation sweep only visits routers registered on the network's
pending set.  These tests pin the contracts the engine's bit-for-bit
reproducibility rests on.
"""

import random

from repro.engine.config import SimulationConfig
from repro.engine.simulator import Simulator
from repro.network.events import EventWheel


def make_sim(**overrides):
    return Simulator(SimulationConfig.small(h=2, routing="ofar", **overrides))


class TestEventWheel:
    def test_fifo_within_a_cycle(self):
        """Events popped for one cycle come back in schedule order."""
        wheel = EventWheel()
        for i in range(10):
            wheel.schedule(7, ("ev", i))
        assert wheel.pop_due(7) == [("ev", i) for i in range(10)]

    def test_interleaved_cycles_keep_per_cycle_order(self):
        wheel = EventWheel()
        wheel.schedule(3, "a")
        wheel.schedule(1, "b")
        wheel.schedule(3, "c")
        wheel.schedule(1, "d")
        assert wheel.pop_due(1) == ["b", "d"]
        assert wheel.pop_due(3) == ["a", "c"]

    def test_pop_due_empty_cycle_is_none(self):
        wheel = EventWheel()
        wheel.schedule(5, "x")
        assert wheel.pop_due(4) is None
        assert wheel.pop_due(6) is None
        assert wheel.pop_due(5) == ["x"]
        assert wheel.pop_due(5) is None  # popped buckets stay gone

    def test_len_and_bool_track_pending_events(self):
        wheel = EventWheel()
        assert not wheel and len(wheel) == 0
        wheel.schedule(2, "a")
        wheel.schedule(2, "b")
        wheel.schedule(9, "c")
        assert wheel and len(wheel) == 3
        wheel.pop_due(2)
        assert wheel and len(wheel) == 1
        wheel.pop_due(9)
        assert not wheel and len(wheel) == 0

    def test_next_cycle_skips_stale_heap_entries(self):
        """The lazy heap discards cycles whose buckets were popped."""
        wheel = EventWheel()
        for cycle in (8, 3, 5):
            wheel.schedule(cycle, f"ev{cycle}")
        assert wheel.next_cycle() == 3
        wheel.pop_due(3)
        wheel.pop_due(5)
        assert wheel.next_cycle() == 8
        wheel.pop_due(8)
        assert wheel.next_cycle() is None

    def test_far_future_events_stay_pending(self):
        """Cycles never queried keep their events (no silent drops)."""
        wheel = EventWheel()
        wheel.schedule(1_000_000, "later")
        for cycle in range(100):
            assert wheel.pop_due(cycle) is None
        assert len(wheel) == 1
        assert wheel.pending_cycles() == [1_000_000]
        assert list(wheel.iter_events()) == ["later"]

    def test_reschedule_same_cycle_after_pop(self):
        """A bucket can be re-created for a cycle popped earlier."""
        wheel = EventWheel()
        wheel.schedule(4, "first")
        wheel.pop_due(4)
        wheel.schedule(4, "second")
        assert wheel.next_cycle() == 4
        assert wheel.pop_due(4) == ["second"]


class TestHasPendingEvents:
    def test_network_view_matches_wheel(self):
        """``Network.has_pending_events`` mirrors the wheel exactly as
        events are scheduled and drained through real simulation."""
        sim = make_sim()
        net = sim.network
        assert not net.has_pending_events()
        sim.create_packet(0, 71)
        sim.run_until_drained(100_000)
        # run_until_drained flushes trailing credit returns too.
        assert not net.has_pending_events()
        assert len(net._events) == 0

    def test_pending_after_injection(self):
        """A granted packet schedules downstream events."""
        sim = make_sim()
        sim.create_packet(0, 71)
        sim.run(12)  # inject + first grant -> arrival/credit in flight
        assert sim.network.has_pending_events()


class TestActiveSetScheduling:
    def test_idle_network_has_empty_active_set(self):
        sim = make_sim()
        sim.run(50)
        assert sim.network.active_router_ids() == ()

    def test_registered_on_injection_and_drained_after(self):
        sim = make_sim()
        net = sim.network
        pkt = sim.create_packet(0, 71)
        # Inject directly (not via the loop): a single packet would be
        # granted and drain the router within the same step otherwise.
        assert net.try_inject(pkt, 0)
        rid = net.topo.node_router(0)
        assert rid in net.active_router_ids()
        sim._source_queues[0].clear()  # consumed the queued copy above
        sim._active_nodes.clear()
        sim._active_order.clear()
        sim.run_until_drained(100_000)
        assert net.ejected_packets == 1
        assert net.active_router_ids() == ()

    def test_active_set_is_sorted_and_consistent(self):
        """Sweep order is ascending router id, and every router either
        holds pending head work or a timed wake event — never neither."""
        sim = make_sim()
        rng = random.Random(3)
        for _ in range(40):
            s, d = rng.randrange(72), rng.randrange(72)
            if s != d:
                sim.create_packet(s, d)
        net = sim.network
        for _ in range(200):
            sim.step()
            active = net.active_router_ids()
            assert list(active) == sorted(active)
            for rt in net.routers:
                assert rt.scheduled == (rt.rid in active)
                if rt.pending and not rt.scheduled:
                    # Descheduled with work: must hold a timed wake.
                    wakes = [
                        ev
                        for bucket_cycle in net._events.pending_cycles()
                        for ev in net._events._buckets[bucket_cycle]
                        if ev[0] == 3 and ev[1] is rt
                    ]
                    assert wakes, f"router {rt.rid} pending but unscheduled"

    def test_sequential_equals_full_poll(self):
        """Active-set sweep produces bit-identical results to polling
        every router: compare two sims where one is forced to keep all
        routers registered (wake_router every cycle)."""
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.patterns import UniformPattern

        def build():
            sim = make_sim(seed=9)
            sim.generator = BernoulliTraffic(
                UniformPattern(sim.network.topo, random.Random(5)),
                0.15, 8, sim.network.topo.num_nodes, 11,
            )
            return sim

        fast = build()
        fast.run(600)

        poll = build()
        for _ in range(600):
            for rt in poll.network.routers:
                if rt.pending:
                    poll.network.wake_router(rt)
            poll.step()

        assert fast.network.ejected_packets == poll.network.ejected_packets
        assert fast.network.movements == poll.network.movements
        assert fast.metrics.latency_sum == poll.metrics.latency_sum
        assert fast.metrics.hops_sum == poll.metrics.hops_sum
        assert fast.network.ring_entries == poll.network.ring_entries
        assert (
            fast.network.global_misroutes == poll.network.global_misroutes
        )
