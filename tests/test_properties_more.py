"""Additional property-based tests for the extension modules."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.dragonfly import Dragonfly
from repro.topology.multiring import MultiRing, zigzag_paths
from repro.traffic.trace import TraceEvent, TraceTraffic, parse_trace


class TestZigzagProperties:
    @given(h=st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_partition_of_k2h(self, h):
        """h zigzag paths exactly partition the edges of K_{2h}."""
        edges = set()
        for path in zigzag_paths(h):
            assert sorted(path) == list(range(2 * h))
            for a, b in zip(path, path[1:]):
                e = frozenset((a, b))
                assert e not in edges
                edges.add(e)
        assert len(edges) == h * (2 * h - 1)

    @given(h=st.integers(1, 8), j=st.integers(0, 7))
    @settings(max_examples=20, deadline=None)
    def test_endpoints(self, h, j):
        j %= h
        path = zigzag_paths(h)[j]
        assert path[0] == 2 * h - 1 - j
        assert path[-1] == j


class TestMultiRingProperties:
    @given(h=st.integers(1, 5), k=st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_any_legal_ring_count_validates(self, h, k):
        k = 1 + (k - 1) % h
        mr = MultiRing(Dragonfly(h), k)
        mr.validate()
        assert len(mr) == k

    @given(h=st.integers(2, 4))
    @settings(max_examples=6, deadline=None)
    def test_rings_cycle_back(self, h):
        """Following each ring's successor N times returns to start."""
        topo = Dragonfly(h)
        mr = MultiRing(topo, h)
        for spec in mr.rings:
            cur = spec.order[0]
            for _ in range(topo.num_routers):
                cur = spec.successor(cur)
            assert cur == spec.order[0]


class TestTraceProperties:
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 400), st.integers(0, 30), st.integers(31, 60)),
            max_size=40,
        ),
        loop=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_replay_conserves_events(self, events, loop):
        trace = [TraceEvent(c, s, d) for c, s, d in sorted(events)]
        gen = TraceTraffic(trace, loop=loop)
        total = 0
        cycle = 0
        while not gen.finished(cycle):
            total += len(list(gen.packets_for_cycle(cycle)))
            cycle += 1
            assert cycle < 10_000
        assert total == len(trace) * loop == gen.total_events

    @given(
        events=st.lists(
            st.tuples(st.integers(0, 99), st.integers(0, 9), st.integers(10, 19)),
            max_size=25,
        )
    )
    @settings(max_examples=30)
    def test_csv_roundtrip(self, events):
        trace = [TraceEvent(c, s, d) for c, s, d in sorted(events)]
        lines = ["cycle,src,dst"] + [f"{e.cycle},{e.src},{e.dst}" for e in trace]
        assert parse_trace(lines) == trace


class TestStaticLoadProperties:
    @given(h=st.integers(2, 3), seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_share_sums_to_hop_count(self, h, seed):
        """Sum of link shares == expected hops per packet (conservation:
        every sampled packet contributes exactly its hop count)."""
        from repro.analysis.static_load import analyze
        from repro.traffic.patterns import UniformPattern

        topo = Dragonfly(h)
        pattern = UniformPattern(topo, random.Random(seed))
        report = analyze(topo, pattern, "min", samples=2_000, seed=seed)
        total_share = sum(report.link_share.values())
        # Minimal routes have 0..3 router-to-router hops; UN average
        # sits between 1.5 and 3.
        assert 1.0 < total_share < 3.0

    @given(seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_valiant_never_below_min_hops(self, seed):
        from repro.analysis.static_load import analyze
        from repro.traffic.patterns import UniformPattern

        topo = Dragonfly(2)
        pattern = UniformPattern(topo, random.Random(seed))
        min_hops = sum(
            analyze(topo, pattern, "min", samples=3_000, seed=seed).link_share.values()
        )
        val_hops = sum(
            analyze(topo, pattern, "val", samples=3_000, seed=seed).link_share.values()
        )
        assert val_hops > min_hops  # detours only add hops
