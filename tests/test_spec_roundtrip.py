"""Property-style suite: every frozen spec type round-trips losslessly.

One generator of "interesting" instances per spec type (RunSpec — with
workload and telemetry sidecar variants — WorkloadSpec, JobSpec,
TelemetryConfig, SimulationConfig), one set of properties checked over
all of them: ``from_jsonable(to_jsonable(x)) == x``, the JSON text form
agrees, a second round trip is a fixed point, and the fingerprint (for
RunSpec) is invariant under the trip.  This is the contract the result
store, the snapshot codec and the orchestrator's process boundary all
lean on.
"""

import json

import pytest

from repro.cluster.spec import (
    ArrivalSpec,
    FaultEvent,
    FaultScheduleSpec,
    JobMix,
    ScenarioSpec,
)
from repro.engine.config import SimulationConfig
from repro.engine.runspec import RunSpec
from repro.telemetry.config import TelemetryConfig
from repro.workloads.spec import JobSpec, WorkloadSpec

# ----------------------------------------------------------------------
# Instance generators
# ----------------------------------------------------------------------
JOB_SPECS = [
    JobSpec(name="plain", nodes=8),
    JobSpec(name="adv", nodes=16, pattern="ADV+2", load=0.35),
    JobSpec(name="late", nodes=4, pattern="SHIFT+3", load=0.05,
            start=1_000, stop=9_999),
    JobSpec(name="burst", nodes=6, traffic="burst", packets_per_node=7),
    # explicit placement pins (bypass the placement policy entirely)
    JobSpec(name="pinned", node_list=(3, 1, 41, 7), pattern="PERM"),
    JobSpec(name="pinned-burst", node_list=(0, 70), traffic="burst",
            packets_per_node=2, start=5),
    JobSpec(name="stencil", nodes=9, pattern="STENCIL", load=1.0),
]

WORKLOAD_SPECS = [
    WorkloadSpec(jobs=(JOB_SPECS[0],)),
    WorkloadSpec(jobs=tuple(JOB_SPECS), placement="round-robin-groups"),
    WorkloadSpec(jobs=(JOB_SPECS[1], JOB_SPECS[4]), placement="random-nodes",
                 placement_seed=99),
    WorkloadSpec(jobs=(JOB_SPECS[2], JOB_SPECS[3]), placement="group-exclusive"),
]

TELEMETRY_CONFIGS = [
    TelemetryConfig(),
    TelemetryConfig(interval=1, capacity=1),
    TelemetryConfig(interval=250, capacity=64, per_link=True),
]

CONFIGS = [
    SimulationConfig.small(h=2, routing="ofar", seed=7),
    SimulationConfig.small(h=3, routing="pb", seed=1),
    SimulationConfig.small(h=2, routing="ofar", escape="embedded",
                           escape_rings=2, seed=5),
    SimulationConfig.small(h=2, routing="par", local_vcs=4,
                           input_read_ports=2, congestion_control=True),
]

ARRIVAL_SPECS = [
    ArrivalSpec(),
    ArrivalSpec(kind="poisson", rate=0.02, jobs=3),
    ArrivalSpec(kind="closed", rate=0.005, jobs=6),
    ArrivalSpec(kind="trace", interarrivals=(0, 150, 7, 2_000)),
]

JOB_MIXES = [
    JobMix(),
    JobMix(sizes=((4, 2.0), (8, 1.0), (16, 0.5)),
           durations=((500, 1.0), (2_000, 3.0)),
           patterns=(("UN", 3.0), ("ADV+2", 1.0), ("STENCIL", 0.25)),
           loads=((0.1, 1.0), (0.45, 2.0))),
]

FAULT_SCHEDULES = [
    FaultScheduleSpec(),
    FaultScheduleSpec(events=(FaultEvent(100, "fail", 3, 2),
                              FaultEvent(700, "restore", 3, 2))),
    FaultScheduleSpec(rate=0.001, count=4, repair=250, seed=17),
    FaultScheduleSpec(events=(FaultEvent(50, "fail", 0, 1),),
                      rate=0.002, count=1, seed=5),
]

SCENARIO_SPECS = [
    ScenarioSpec(),
    ScenarioSpec(arrivals=ARRIVAL_SPECS[1], mix=JOB_MIXES[1],
                 scheduler="easy", placement="random-nodes",
                 placement_seed=42, faults=FAULT_SCHEDULES[2],
                 horizon=5_000, seed=11, blast_window=200),
    ScenarioSpec(arrivals=ARRIVAL_SPECS[3], scheduler="fcfs",
                 placement="round-robin-groups",
                 faults=FAULT_SCHEDULES[1], horizon=3_000, seed=2),
    ScenarioSpec(arrivals=ARRIVAL_SPECS[2], scheduler="easy",
                 faults=FAULT_SCHEDULES[3], horizon=1_000),
]

RUN_SPECS = [
    RunSpec(CONFIGS[0], "UN", 0.1),
    RunSpec(CONFIGS[1], "ADV+1", 0.55, warmup=123, measure=4_567),
    RunSpec(CONFIGS[2], "MIX2", 0.0, warmup=0, measure=1),
    # telemetry sidecar riding along (excluded from identity)
    RunSpec(CONFIGS[0], "ADV+2", 0.3, telemetry=TELEMETRY_CONFIGS[2]),
    # workload specs, including one with explicit node_list pins
    RunSpec.for_workload(CONFIGS[0], WORKLOAD_SPECS[1], warmup=300, measure=300),
    RunSpec.for_workload(CONFIGS[3], WORKLOAD_SPECS[2], warmup=10, measure=20,
                         telemetry=TELEMETRY_CONFIGS[1]),
    # cluster scenarios: churn + faults + scheduling over a horizon
    RunSpec.for_scenario(CONFIGS[0], SCENARIO_SPECS[1]),
    RunSpec.for_scenario(CONFIGS[1], SCENARIO_SPECS[2],
                         telemetry=TELEMETRY_CONFIGS[0]),
]


def _identity(spec: RunSpec) -> RunSpec:
    """The spec minus its observation sidecar (what the JSON form keeps)."""
    from dataclasses import replace

    return replace(spec, telemetry=None)


# ----------------------------------------------------------------------
# The properties
# ----------------------------------------------------------------------
class TestJobSpecRoundTrip:
    @pytest.mark.parametrize("job", JOB_SPECS, ids=lambda j: j.name)
    def test_lossless(self, job):
        assert JobSpec.from_jsonable(job.to_jsonable()) == job

    @pytest.mark.parametrize("job", JOB_SPECS, ids=lambda j: j.name)
    def test_jsonable_is_json_safe_and_stable(self, job):
        blob = json.dumps(job.to_jsonable(), sort_keys=True)
        again = JobSpec.from_jsonable(json.loads(blob))
        assert json.dumps(again.to_jsonable(), sort_keys=True) == blob

    def test_node_list_pins_survive_as_tuple(self):
        job = JobSpec.from_jsonable(
            JobSpec(name="p", node_list=(9, 2, 5)).to_jsonable()
        )
        assert job.node_list == (9, 2, 5)
        assert isinstance(job.node_list, tuple)

    def test_unknown_keys_rejected(self):
        data = JOB_SPECS[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown JobSpec keys"):
            JobSpec.from_jsonable(data)


class TestWorkloadSpecRoundTrip:
    @pytest.mark.parametrize(
        "workload", WORKLOAD_SPECS, ids=[w.placement for w in WORKLOAD_SPECS]
    )
    def test_lossless(self, workload):
        assert WorkloadSpec.from_jsonable(workload.to_jsonable()) == workload

    @pytest.mark.parametrize(
        "workload", WORKLOAD_SPECS, ids=[w.placement for w in WORKLOAD_SPECS]
    )
    def test_text_form_fixed_point(self, workload):
        text = workload.to_json()
        again = WorkloadSpec.from_json(text)
        assert again == workload
        assert again.to_json() == text

    def test_unknown_keys_rejected(self):
        data = WORKLOAD_SPECS[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown WorkloadSpec keys"):
            WorkloadSpec.from_jsonable(data)


class TestTelemetryConfigRoundTrip:
    @pytest.mark.parametrize("tcfg", TELEMETRY_CONFIGS,
                             ids=lambda t: f"i{t.interval}")
    def test_lossless(self, tcfg):
        assert TelemetryConfig.from_jsonable(tcfg.to_jsonable()) == tcfg


class TestArrivalSpecRoundTrip:
    @pytest.mark.parametrize("arr", ARRIVAL_SPECS, ids=lambda a: a.kind)
    def test_lossless(self, arr):
        assert ArrivalSpec.from_jsonable(arr.to_jsonable()) == arr

    def test_trace_gaps_survive_as_tuple(self):
        again = ArrivalSpec.from_jsonable(ARRIVAL_SPECS[3].to_jsonable())
        assert again.interarrivals == (0, 150, 7, 2_000)
        assert isinstance(again.interarrivals, tuple)

    def test_unknown_keys_rejected(self):
        data = ARRIVAL_SPECS[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown ArrivalSpec keys"):
            ArrivalSpec.from_jsonable(data)


class TestFaultScheduleRoundTrip:
    @pytest.mark.parametrize("faults", FAULT_SCHEDULES,
                             ids=["empty", "timed", "random", "mixed"])
    def test_lossless(self, faults):
        assert FaultScheduleSpec.from_jsonable(faults.to_jsonable()) == faults

    def test_events_survive_as_fault_event_tuple(self):
        again = FaultScheduleSpec.from_jsonable(FAULT_SCHEDULES[1].to_jsonable())
        assert again.events == (FaultEvent(100, "fail", 3, 2),
                                FaultEvent(700, "restore", 3, 2))
        assert all(isinstance(e, FaultEvent) for e in again.events)

    def test_unknown_keys_rejected(self):
        data = FAULT_SCHEDULES[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown FaultScheduleSpec keys"):
            FaultScheduleSpec.from_jsonable(data)
        event = FaultEvent(1, "fail", 0, 0).to_jsonable()
        event["surprise"] = 1
        with pytest.raises(ValueError, match="unknown FaultEvent keys"):
            FaultEvent.from_jsonable(event)


class TestScenarioSpecRoundTrip:
    @pytest.mark.parametrize(
        "scenario", SCENARIO_SPECS,
        ids=[f"{s.scheduler}-{s.arrivals.kind}" for s in SCENARIO_SPECS],
    )
    def test_lossless(self, scenario):
        assert ScenarioSpec.from_jsonable(scenario.to_jsonable()) == scenario

    @pytest.mark.parametrize(
        "scenario", SCENARIO_SPECS,
        ids=[f"{s.scheduler}-{s.arrivals.kind}" for s in SCENARIO_SPECS],
    )
    def test_text_form_fixed_point(self, scenario):
        text = scenario.to_json()
        again = ScenarioSpec.from_json(text)
        assert again == scenario
        assert again.to_json() == text

    @pytest.mark.parametrize(
        "scenario", SCENARIO_SPECS,
        ids=[f"{s.scheduler}-{s.arrivals.kind}" for s in SCENARIO_SPECS],
    )
    def test_fingerprint_invariant_under_round_trip(self, scenario):
        trip = ScenarioSpec.from_json(scenario.to_json())
        assert trip.fingerprint() == scenario.fingerprint()

    def test_unknown_keys_rejected(self):
        data = SCENARIO_SPECS[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_jsonable(data)

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            ScenarioSpec(scheduler="lottery")


class TestSimulationConfigRoundTrip:
    @pytest.mark.parametrize(
        "cfg", CONFIGS, ids=[f"{c.routing}-h{c.h}" for c in CONFIGS]
    )
    def test_lossless(self, cfg):
        assert SimulationConfig.from_json(cfg.to_json()) == cfg


class TestRunSpecRoundTrip:
    @pytest.mark.parametrize("spec", RUN_SPECS, ids=lambda s: s.label())
    def test_lossless_modulo_observation(self, spec):
        # telemetry is an observation sidecar, deliberately not identity
        assert RunSpec.from_jsonable(spec.to_jsonable()) == _identity(spec)

    @pytest.mark.parametrize("spec", RUN_SPECS, ids=lambda s: s.label())
    def test_second_trip_is_fixed_point(self, spec):
        once = RunSpec.from_jsonable(spec.to_jsonable())
        twice = RunSpec.from_jsonable(once.to_jsonable())
        assert twice == once
        assert twice.to_jsonable() == once.to_jsonable()

    @pytest.mark.parametrize("spec", RUN_SPECS, ids=lambda s: s.label())
    def test_fingerprint_invariant_under_round_trip(self, spec):
        assert RunSpec.from_json(spec.to_json()).fingerprint() == spec.fingerprint()

    def test_telemetry_excluded_from_fingerprint_and_json(self):
        bare = RUN_SPECS[0]
        watched = RunSpec(bare.config, bare.pattern_spec, bare.load,
                          bare.warmup, bare.measure,
                          telemetry=TelemetryConfig(interval=5))
        assert watched.fingerprint() == bare.fingerprint()
        assert watched.to_jsonable() == bare.to_jsonable()

    def test_scenario_participates_in_fingerprint(self):
        a = RunSpec.for_scenario(CONFIGS[0], SCENARIO_SPECS[1])
        tweaked = ScenarioSpec.from_jsonable(
            {**SCENARIO_SPECS[1].to_jsonable(), "seed": 999}
        )
        b = RunSpec.for_scenario(CONFIGS[0], tweaked)
        assert a.fingerprint() != b.fingerprint()
        # and the scenario itself survives the RunSpec round trip
        again = RunSpec.from_json(a.to_json())
        assert again.scenario == SCENARIO_SPECS[1]

    def test_workload_participates_in_fingerprint(self):
        a = RUN_SPECS[4]
        other = WorkloadSpec(jobs=(JOB_SPECS[0],))
        b = RunSpec.for_workload(a.config, other, a.warmup, a.measure)
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_keys_rejected(self):
        data = RUN_SPECS[0].to_jsonable()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown RunSpec keys"):
            RunSpec.from_jsonable(data)
