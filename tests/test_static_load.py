"""Tests for the static link-load analyzer."""

import random

import pytest

from repro.analysis.offsets import valiant_offset_bound
from repro.analysis.static_load import analyze, predicted_saturation
from repro.topology.dragonfly import Dragonfly, PortKind
from repro.traffic.applications import StencilPattern
from repro.traffic.patterns import AdversarialPattern, UniformPattern


@pytest.fixture
def topo():
    return Dragonfly(2)


@pytest.fixture
def rng():
    return random.Random(11)


class TestClosedFormAgreement:
    def test_min_adversarial_matches_1_over_2h2(self, topo, rng):
        """MIN under ADV+N: the single inter-group link bounds load at
        1/(2h^2) — the analyzer must find exactly that."""
        pattern = AdversarialPattern(topo, rng, 2)
        sat = predicted_saturation(topo, pattern, "min", samples=30_000)
        assert sat == pytest.approx(1 / (2 * topo.h**2), rel=0.1)

    def test_valiant_advh_tighter_than_offsets_module(self, rng):
        """VAL under ADV+h: the Monte-Carlo analyzer also counts the
        l1/l3 hops that share the hot local links, so its bound is
        *tighter* than the l2-only closed form — and much closer to the
        simulator (0.203 predicted vs 0.196 measured at h=3)."""
        topo = Dragonfly(3)
        pattern = AdversarialPattern(topo, rng, 3)
        sat = predicted_saturation(topo, pattern, "val", samples=30_000)
        closed_form = valiant_offset_bound(topo, 3)
        assert sat <= closed_form
        assert sat > 0.5 * closed_form  # same order: the l2 funnel dominates

    def test_uniform_min_near_capacity(self, topo, rng):
        pattern = UniformPattern(topo, rng)
        sat = predicted_saturation(topo, pattern, "min", samples=30_000)
        assert sat > 0.8

    def test_valiant_uniform_half(self, topo, rng):
        """Valiant doubles global utilization: bound ~0.5 under UN."""
        pattern = UniformPattern(topo, rng)
        sat = predicted_saturation(topo, pattern, "val", samples=30_000)
        assert sat == pytest.approx(0.5, abs=0.12)


class TestReport:
    def test_hottest_sorted(self, topo, rng):
        report = analyze(topo, AdversarialPattern(topo, rng, 2), "min", samples=5_000)
        top = report.hottest(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_adversarial_imbalance_on_globals(self, topo, rng):
        """ADV concentrates on global links under MIN."""
        adv = analyze(topo, AdversarialPattern(topo, rng, 2), "min", samples=10_000)
        un = analyze(topo, UniformPattern(topo, rng), "min", samples=10_000)
        assert adv.imbalance(topo, PortKind.GLOBAL) > 2 * un.imbalance(topo, PortKind.GLOBAL)

    def test_invalid_routing(self, topo, rng):
        with pytest.raises(ValueError):
            analyze(topo, UniformPattern(topo, rng), "chaos")

    def test_deterministic(self, topo):
        p1 = analyze(topo, UniformPattern(topo, random.Random(5)), "min", samples=2_000, seed=9)
        p2 = analyze(topo, UniformPattern(topo, random.Random(5)), "min", samples=2_000, seed=9)
        assert p1.link_share == p2.link_share


class TestPredictsSimulator:
    def test_prediction_upper_bounds_simulation(self, topo):
        """The static bound must upper-bound measured MIN throughput and
        be loose by at most the known allocator inefficiency."""
        from repro.engine.config import SimulationConfig
        from repro.engine.runner import run_spec
        from repro.engine.runspec import RunSpec

        rng = random.Random(3)
        pattern_spec, offset = "ADV+2", 2
        predicted = predicted_saturation(
            topo, AdversarialPattern(topo, rng, offset), "min", samples=20_000
        )
        cfg = SimulationConfig.small(h=2, routing="min")
        measured = run_spec(RunSpec(cfg, pattern_spec, 0.5, 600, 600)).throughput
        assert measured <= predicted * 1.15
        assert measured >= predicted * 0.4

    def test_stencil_hotspot_prediction(self, topo):
        """Sequential stencil mapping concentrates local links far more
        than the random mapping — predicted without simulation."""
        seq = analyze(
            topo, StencilPattern(topo, random.Random(1), mapping="sequential"),
            "min", samples=15_000,
        )
        rnd = analyze(
            topo, StencilPattern(topo, random.Random(1), mapping="random"),
            "min", samples=15_000,
        )
        assert seq.predicted_saturation < rnd.predicted_saturation
        assert seq.imbalance(topo, PortKind.LOCAL) > rnd.imbalance(topo, PortKind.LOCAL)
